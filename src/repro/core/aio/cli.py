"""Console entry points for the live relay daemons.

Installed as ``repro-outer-server`` and ``repro-inner-server``::

    # Outside the firewall:
    repro-outer-server --host 0.0.0.0 --control-port 7000

    # Inside the firewall (open TCP 7100 inbound from the outer host):
    repro-inner-server --host 0.0.0.0 --nxport 7100

Both run until interrupted and log connects/binds/chains to stderr.

Observability flags (all off by default):

* ``--telemetry-port N`` — serve the live metrics registry on
  ``http://host:N/metrics`` (Prometheus text) and ``/metrics.json``
  (the stream ``repro-obs tail`` follows).
* ``--trace-out BASE`` — record wall-clock spans while running and
  write ``BASE.trace.json`` + ``BASE.summary.json`` on shutdown.
* ``--trace-site LABEL`` — also turn on causal tracing, prefixing
  every id this daemon mints with ``LABEL`` so ``repro-obs assemble``
  can stitch its trace with the other processes' without id
  collisions.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import logging

from repro.core.aio.relay import DEFAULT_CHUNK, AioInnerServer, AioOuterServer
from repro.obs import spans as _obs
from repro.obs import trace as _trace
from repro.obs.export import write_artifacts
from repro.obs.telemetry import TelemetryServer

__all__ = ["outer_main", "inner_main"]

log = logging.getLogger("repro.nexus_proxy")


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="address to bind")
    parser.add_argument(
        "--chunk", type=int, default=DEFAULT_CHUNK,
        help="relay read-buffer size in bytes (starting size when adaptive)",
    )
    parser.add_argument(
        "--pump", choices=("adaptive", "fixed"), default="adaptive",
        help="data-plane pump: adaptive chunk growth (default) or the "
        "fixed-chunk drain-per-write baseline",
    )
    parser.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus text) and /metrics.json on "
        "this port while running (default: no telemetry listener)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="BASE",
        help="record spans and write BASE.trace.json + BASE.summary.json "
        "on shutdown",
    )
    parser.add_argument(
        "--trace-site", default=None, metavar="LABEL",
        help="enable causal tracing with this site label (ids this "
        "process mints are prefixed LABEL, e.g. 'outer')",
    )
    parser.add_argument("-v", "--verbose", action="store_true")


def _setup_logging(verbose: bool) -> None:
    logging.basicConfig(
        level=logging.DEBUG if verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )


async def _serve_forever(server, args, role: str) -> None:
    rec = None
    if args.trace_out is not None:
        rec = _obs.ObsRecorder()
        rec.registry.register_collector("relay", server.stats.snapshot)
        _obs.install(rec)
    if args.trace_site is not None:
        _trace.enable(args.trace_site)
    await server.start()
    telemetry = None
    if args.telemetry_port is not None:
        registry = rec.registry if rec is not None else None
        if registry is None:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            registry.register_collector("relay", server.stats.snapshot)
        telemetry = TelemetryServer(
            registry.snapshot, host=args.host, port=args.telemetry_port,
            extra={"role": role, "host": args.host},
        )
        await telemetry.start()
        log.info("telemetry on http://%s:%d/metrics", args.host,
                 telemetry.bound_port)
    try:
        await asyncio.Event().wait()  # until cancelled
    finally:
        if telemetry is not None:
            await telemetry.stop()
        await server.stop()
        if rec is not None:
            _obs.uninstall()
            paths = write_artifacts(rec, args.trace_out,
                                    extra_meta={"role": role})
            log.info("wrote %s and %s", *paths)


def outer_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-outer-server",
        description="Nexus Proxy outer server (runs outside the firewall)",
    )
    _common(parser)
    parser.add_argument("--control-port", type=int, default=7000)
    parser.add_argument(
        "--secret", default=None,
        help="shared secret clients must present (default: open)",
    )
    parser.add_argument(
        "--no-mux", action="store_true",
        help="open one nxport connection per passive chain instead of "
        "the shared frame-multiplexed link",
    )
    args = parser.parse_args(argv)
    _setup_logging(args.verbose)
    server = AioOuterServer(
        args.host, args.control_port, chunk=args.chunk, secret=args.secret,
        pump_mode=args.pump, mux=not args.no_mux,
    )
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve_forever(server, args, role="outer"))
    return 0


def inner_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-inner-server",
        description="Nexus Proxy inner server (runs inside the firewall; "
        "open the nxport inbound from the outer server only)",
    )
    _common(parser)
    parser.add_argument("--nxport", type=int, default=7100)
    parser.add_argument(
        "--allow-from", action="append", default=None, metavar="ADDR",
        help="only accept nxport connections from this source address "
        "(repeatable; default: accept any — rely on the packet filter)",
    )
    args = parser.parse_args(argv)
    _setup_logging(args.verbose)
    server = AioInnerServer(
        args.host, args.nxport, chunk=args.chunk, allowed_peers=args.allow_from,
        pump_mode=args.pump,
    )
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve_forever(server, args, role="inner"))
    return 0
