"""Console entry points for the live relay daemons.

Installed as ``repro-outer-server`` and ``repro-inner-server``::

    # Outside the firewall:
    repro-outer-server --host 0.0.0.0 --control-port 7000

    # Inside the firewall (open TCP 7100 inbound from the outer host):
    repro-inner-server --host 0.0.0.0 --nxport 7100

Both run until interrupted and log connects/binds/chains to stderr.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import logging

from repro.core.aio.relay import DEFAULT_CHUNK, AioInnerServer, AioOuterServer

__all__ = ["outer_main", "inner_main"]


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="address to bind")
    parser.add_argument(
        "--chunk", type=int, default=DEFAULT_CHUNK,
        help="relay read-buffer size in bytes (starting size when adaptive)",
    )
    parser.add_argument(
        "--pump", choices=("adaptive", "fixed"), default="adaptive",
        help="data-plane pump: adaptive chunk growth (default) or the "
        "fixed-chunk drain-per-write baseline",
    )
    parser.add_argument("-v", "--verbose", action="store_true")


def _setup_logging(verbose: bool) -> None:
    logging.basicConfig(
        level=logging.DEBUG if verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )


async def _serve_forever(server) -> None:
    await server.start()
    try:
        await asyncio.Event().wait()  # until cancelled
    finally:
        await server.stop()


def outer_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-outer-server",
        description="Nexus Proxy outer server (runs outside the firewall)",
    )
    _common(parser)
    parser.add_argument("--control-port", type=int, default=7000)
    parser.add_argument(
        "--secret", default=None,
        help="shared secret clients must present (default: open)",
    )
    parser.add_argument(
        "--no-mux", action="store_true",
        help="open one nxport connection per passive chain instead of "
        "the shared frame-multiplexed link",
    )
    args = parser.parse_args(argv)
    _setup_logging(args.verbose)
    server = AioOuterServer(
        args.host, args.control_port, chunk=args.chunk, secret=args.secret,
        pump_mode=args.pump, mux=not args.no_mux,
    )
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve_forever(server))
    return 0


def inner_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-inner-server",
        description="Nexus Proxy inner server (runs inside the firewall; "
        "open the nxport inbound from the outer server only)",
    )
    _common(parser)
    parser.add_argument("--nxport", type=int, default=7100)
    parser.add_argument(
        "--allow-from", action="append", default=None, metavar="ADDR",
        help="only accept nxport connections from this source address "
        "(repeatable; default: accept any — rely on the packet filter)",
    )
    args = parser.parse_args(argv)
    _setup_logging(args.verbose)
    server = AioInnerServer(
        args.host, args.nxport, chunk=args.chunk, allowed_peers=args.allow_from,
        pump_mode=args.pump,
    )
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_serve_forever(server))
    return 0
