"""Sharded relay fleet: N outer workers behind one logical endpoint.

The paper's firewall-compliant design funnels every wide-area chain
through *one* Nexus proxy relay; PR 6's striping made clients
parallel, but a single outer daemon still owned every chain.  This
module shards the outer server across N worker *processes* that
together present one logical control endpoint, with the chain→worker
decision made by :mod:`repro.core.placement` policy.

Two fleet modes share one logical port:

* **handoff** (default, the policy-bearing mode): a tiny front door
  accepts each TCP connection with ``loop.sock_accept`` — a raw
  socket, never wrapped in a transport, so *zero* request bytes are
  consumed — applies admission control (per-client chain quotas),
  places the chain (least-loaded by live byte-rate from worker
  heartbeats, consistent-hash fallback), and passes the intact file
  descriptor to the chosen worker over a unix control socket with
  ``SCM_RIGHTS`` (:func:`socket.send_fds`).  The worker wraps the fd
  into its own streams and runs the ordinary
  :meth:`AioOuterServer._handle_control` on it.
* **reuseport**: every worker binds the *same* TCP port with
  ``SO_REUSEPORT`` and the kernel spreads incoming connections; the
  manager only reserves the port (bound, never listening — a
  non-listening socket takes no share of the reuseport distribution)
  and supervises.  No front door means no admission control and no
  least-loaded placement — it is the cheap kernel-placed variant.

Control-channel wire format (one unix stream socket per worker,
newline-delimited JSON; a message with ``"fds": k`` has exactly ``k``
file descriptors attached to its ``sendmsg`` as ``SCM_RIGHTS``
ancillary data, paired FIFO on the receive side):

* worker → manager: ``hello`` (worker id, pid, bound ports),
  ``hb`` (state, bytes_relayed, active_chains, edge_throttle_waits),
  ``closed`` (one handed-off chain ended; carries the client address
  so the manager releases its quota slot), ``drained``.
* manager → worker: ``handoff`` (``fds: 1`` — the accepted socket),
  ``drain`` (optional grace override), ``stop``.

Graceful drain is cooperative *migration by redial*: a draining
worker is excluded from placement, refuses new handoffs, aborts
chains that moved no bytes over a poll interval immediately, and
aborts the rest when the grace period expires.  The striping layer
(PR 6) redials dead streams through the logical endpoint — landing on
a healthy worker — and resumes from the sink's restart marker, so an
in-flight striped transfer survives a drain with zero lost or
duplicated bytes.  The worker writes its trace artifacts and exits
only after its chains are gone.

Each worker is a full relay daemon: its own telemetry endpoint, its
own ObsRecorder whose trace file carries a per-worker causal site
prefix, so ``repro-obs assemble`` stitches client + N workers into
one flow-linked trace with ``unresolved_parents == 0``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import multiprocessing
import os
import socket
import tempfile
import threading
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.placement import (
    WORKER_DRAINING,
    WORKER_GONE,
    WORKER_UP,
    AdmissionControl,
    LeastLoadedPlacer,
    TokenBucket,
    WorkerView,
    fleet_snapshot,
)

__all__ = ["FleetSpec", "FleetManager", "resolve_mode", "HAVE_REUSEPORT"]

log = logging.getLogger("repro.fleet")

#: ``SO_REUSEPORT`` exists on this platform (Linux ≥ 3.9, BSDs).
HAVE_REUSEPORT = hasattr(socket, "SO_REUSEPORT")

_CTL_RECV = 65536
_CTL_MAXFDS = 32


def resolve_mode(mode: str) -> str:
    """Resolve a spec mode to a concrete one.

    ``auto`` prefers the kernel's ``SO_REUSEPORT`` spreading where the
    platform has it; ``handoff`` is the universal fallback *and* the
    only mode carrying edge policy (quotas, least-loaded placement).
    """
    if mode == "auto":
        return "reuseport" if HAVE_REUSEPORT else "handoff"
    if mode not in ("handoff", "reuseport"):
        raise ValueError(f"unknown fleet mode {mode!r}")
    if mode == "reuseport" and not HAVE_REUSEPORT:
        raise ValueError("SO_REUSEPORT not available on this platform")
    return mode


@dataclass
class FleetSpec:
    """Everything a fleet deployment needs — plain data, picklable
    across the ``spawn`` boundary to worker processes."""

    workers: int = 2
    host: str = "127.0.0.1"
    #: Logical fleet port (0 = pick one).
    port: int = 0
    #: ``handoff`` | ``reuseport`` | ``auto`` (see :func:`resolve_mode`).
    mode: str = "handoff"
    pump_mode: str = "adaptive"
    mux: bool = True
    secret: Optional[str] = None
    #: Per-client concurrent-chain quota at the front door (handoff
    #: mode only; ``None`` = unlimited).
    max_chains_per_client: Optional[int] = None
    #: Fleet-wide edge byte-rate cap, split evenly across workers
    #: (``None`` = unlimited).  Rate-capped chains take the
    #: stream-pump path.
    edge_rate_bytes_per_s: Optional[float] = None
    edge_burst_bytes: Optional[float] = None
    #: Source addresses for workers' onward connections, one per
    #: worker (loopback aliases in benchmarks, NICs in deployment) so
    #: per-relay-host WAN emulation can bucket traffic by worker.
    onward_bind_hosts: Optional[List[str]] = None
    heartbeat_s: float = 0.25
    #: Default drain grace: busy chains get this long to finish before
    #: being aborted into a client redial.
    drain_grace_s: float = 2.0
    #: Per-worker telemetry endpoints (port 0, reported in hello).
    telemetry: bool = False
    #: Wall-clock period of each worker's time-series sampler
    #: (telemetry mode only; 0 disables sampling).  The ring-buffered
    #: history rides in the ``/metrics.json`` payload, which is what
    #: the fleet aggregator turns into windowed rates/percentiles.
    sample_interval_s: float = 1.0
    #: Directory for per-worker trace artifacts
    #: (``worker-<id>.trace.json``); also enables causal tracing with
    #: site prefix ``<trace_site>-w<index>``.
    trace_dir: Optional[str] = None
    trace_site: str = "fleet"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if (
            self.onward_bind_hosts is not None
            and len(self.onward_bind_hosts) < self.workers
        ):
            raise ValueError(
                f"need {self.workers} onward_bind_hosts, "
                f"got {len(self.onward_bind_hosts)}"
            )


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


class _WorkerRuntime:
    """Mutable state of one worker process (lives in the child)."""

    def __init__(self, spec: FleetSpec, worker_id: str, index: int) -> None:
        self.spec = spec
        self.worker_id = worker_id
        self.index = index
        self.state = WORKER_UP
        self.outer: Any = None
        self.limiter: Optional[TokenBucket] = None
        self.sock: Optional[socket.socket] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.chains: "set[asyncio.Task]" = set()
        self.stop_event: Optional[asyncio.Event] = None
        self.draining = False

    # -- control-channel sends (blocking socket, tiny messages) ----------

    def send_msg(self, msg: "dict[str, Any]") -> None:
        if self.sock is None:
            return
        try:
            self.sock.sendall(
                json.dumps(msg, separators=(",", ":")).encode() + b"\n"
            )
        except OSError:
            pass

    def heartbeat_msg(self) -> "dict[str, Any]":
        stats = self.outer.stats
        if self.spec.mode == "handoff":
            active = len(self.chains)
        else:
            # No handoff tasks in reuseport mode — tracked sockets are
            # the load proxy (two per live chain: inbound + onward).
            active = len(self.outer._conns)
        return {
            "op": "hb",
            "worker": self.worker_id,
            "state": self.state,
            "bytes_relayed": stats.bytes_relayed,
            "active_chains": active,
            "edge_throttle_waits": (
                self.limiter.waits if self.limiter is not None else 0
            ),
        }


def _ctl_reader_thread(
    rt: _WorkerRuntime,
    sock: socket.socket,
    loop: asyncio.AbstractEventLoop,
    dispatch,
) -> None:
    """Blocking control-channel reader.

    ``SCM_RIGHTS`` ancillary data never survives a plain asyncio
    stream read, so the worker drains its control socket with blocking
    :func:`socket.recv_fds` on a daemon thread and trampolines parsed
    messages (with their FIFO-paired fds) into the event loop.
    """
    buf = b""
    fd_queue: "deque[int]" = deque()
    while True:
        try:
            data, fds, _flags, _addr = socket.recv_fds(
                sock, _CTL_RECV, _CTL_MAXFDS
            )
        except OSError:
            break
        if not data:
            break
        fd_queue.extend(fds)
        buf += data
        while b"\n" in buf:
            line, buf = buf.split(b"\n", 1)
            if not line:
                continue
            try:
                msg = json.loads(line)
            except ValueError:
                continue
            take = int(msg.get("fds", 0))
            msg_fds = [fd_queue.popleft() for _ in range(take)]
            loop.call_soon_threadsafe(dispatch, msg, msg_fds)
    # Close stray fds whose messages never parsed, then report EOF
    # (manager gone → worker shuts down).
    for fd in fd_queue:
        with contextlib.suppress(OSError):
            os.close(fd)
    loop.call_soon_threadsafe(dispatch, {"op": "stop", "reason": "ctl-eof"}, [])


async def _worker_async(
    spec: FleetSpec, worker_id: str, index: int, ctl_path: str
) -> None:
    from repro.core.aio.relay import AioOuterServer
    from repro.obs import spans as _obs
    from repro.obs import trace as _trace

    rt = _WorkerRuntime(spec, worker_id, index)
    rt.loop = asyncio.get_running_loop()
    rt.stop_event = asyncio.Event()

    rec = None
    if spec.trace_dir is not None:
        rec = _obs.ObsRecorder()
        _obs.install(rec)
        _trace.enable(f"{spec.trace_site}-w{index}")

    if spec.edge_rate_bytes_per_s is not None:
        per_worker = spec.edge_rate_bytes_per_s / spec.workers
        burst = (
            spec.edge_burst_bytes / spec.workers
            if spec.edge_burst_bytes is not None else None
        )
        rt.limiter = TokenBucket(per_worker, burst)

    onward = (
        spec.onward_bind_hosts[index]
        if spec.onward_bind_hosts is not None else None
    )
    if spec.mode == "reuseport":
        outer = AioOuterServer(
            spec.host, spec.port, pump_mode=spec.pump_mode, mux=spec.mux,
            secret=spec.secret, reuse_port=True, onward_bind_host=onward,
            limiter=rt.limiter,
        )
    else:
        # Handoff mode: chains arrive as fds, so the worker's own
        # listener is a private loopback port (used only for debug /
        # direct dials in tests).
        outer = AioOuterServer(
            "127.0.0.1", 0, pump_mode=spec.pump_mode, mux=spec.mux,
            secret=spec.secret, onward_bind_host=onward, limiter=rt.limiter,
        )
    rt.outer = outer
    if rec is not None:
        rec.registry.register_collector("relay", outer.stats.snapshot)
    await outer.start()

    telemetry = None
    sampler = None
    if spec.telemetry:
        from repro.obs.telemetry import TelemetryServer

        if rec is not None:
            registry = rec.registry
        else:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            registry.register_collector("relay", outer.stats.snapshot)
        extra_fn = None
        if spec.sample_interval_s > 0:
            from repro.obs.timeseries import TimeSeriesSampler

            sampler = TimeSeriesSampler(
                registry.snapshot,
                interval_s=spec.sample_interval_s,
                domain="wall",
            )
            extra_fn = lambda: {"timeseries": sampler.export()}
        telemetry = TelemetryServer(
            registry.snapshot, host="127.0.0.1", port=0,
            extra={"role": "fleet-worker", "worker": worker_id},
            extra_fn=extra_fn,
        )
        await telemetry.start()
        if sampler is not None:
            sampler.start_wall()

    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(ctl_path)
    rt.sock = sock

    async def serve_handoff(fd: int, msg: "dict[str, Any]") -> None:
        conn = socket.socket(fileno=fd)
        try:
            conn.setblocking(False)
            # Same reader limit the listener would have applied — the
            # default 64 KiB cap would quietly shrink every pump read.
            reader, writer = await asyncio.open_connection(
                sock=conn, limit=outer.stream_limit
            )
        except OSError:
            with contextlib.suppress(OSError):
                conn.close()
            return
        await outer._handle_control(reader, writer)

    def chain_done(task: asyncio.Task, client: str) -> None:
        rt.chains.discard(task)
        with contextlib.suppress(asyncio.CancelledError):
            task.exception()
        rt.send_msg({"op": "closed", "worker": worker_id, "client": client})

    async def drain(grace_s: Optional[float]) -> None:
        if rt.draining:
            return
        rt.draining = True
        rt.state = WORKER_DRAINING
        rt.send_msg(rt.heartbeat_msg())  # announce the state change now
        grace = spec.drain_grace_s if grace_s is None else grace_s
        if spec.mode == "reuseport" and outer._server is not None:
            # Stop taking a share of the kernel's reuseport spread.
            outer._server.close()
            with contextlib.suppress(Exception):
                await outer._server.wait_closed()
            outer._server = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + grace
        poll = min(0.1, max(grace / 10, 0.01))
        last_bytes = outer.stats.bytes_relayed
        while loop.time() < deadline:
            busy = rt.chains if spec.mode == "handoff" else outer._conns
            if not busy:
                break
            await asyncio.sleep(poll)
            now_bytes = outer.stats.bytes_relayed
            if now_bytes == last_bytes:
                # Every remaining chain is idle: abort now, the
                # clients redial onto a healthy worker.
                break
            last_bytes = now_bytes
        for task in list(rt.chains):
            task.cancel()
        await outer.stop()  # aborts any sockets still mid-transfer
        rt.send_msg({"op": "drained", "worker": worker_id})
        rt.stop_event.set()

    def dispatch(msg: "dict[str, Any]", fds: "list[int]") -> None:
        op = msg.get("op")
        if op == "handoff":
            if not fds:
                return
            fd = fds[0]
            client = str(msg.get("client", ""))
            if rt.state != WORKER_UP:
                # Refused: close our copy; the client sees a reset and
                # redials through the logical endpoint.
                with contextlib.suppress(OSError):
                    os.close(fd)
                rt.send_msg(
                    {"op": "closed", "worker": worker_id, "client": client}
                )
                return
            task = rt.loop.create_task(serve_handoff(fd, msg))
            rt.chains.add(task)
            task.add_done_callback(lambda t: chain_done(t, client))
        elif op == "drain":
            rt.loop.create_task(drain(msg.get("grace_s")))
        elif op == "stop":
            rt.stop_event.set()

    reader_thread = threading.Thread(
        target=_ctl_reader_thread, args=(rt, sock, rt.loop, dispatch),
        daemon=True, name=f"fleet-ctl-{worker_id}",
    )
    reader_thread.start()

    rt.send_msg({
        "op": "hello",
        "worker": worker_id,
        "index": index,
        "pid": os.getpid(),
        "control_port": outer.control_port,
        "telemetry_port": (
            telemetry.bound_port if telemetry is not None else None
        ),
    })

    async def heartbeats() -> None:
        while not rt.stop_event.is_set():
            rt.send_msg(rt.heartbeat_msg())
            await asyncio.sleep(spec.heartbeat_s)

    hb_task = asyncio.get_running_loop().create_task(heartbeats())
    try:
        await rt.stop_event.wait()
    finally:
        hb_task.cancel()
        for task in list(rt.chains):
            task.cancel()
        if rt.chains:
            await asyncio.gather(*rt.chains, return_exceptions=True)
        if sampler is not None:
            await sampler.stop()
        if telemetry is not None:
            await telemetry.stop()
        await outer.stop()
        if rec is not None:
            from repro.obs.export import write_artifacts

            _obs.uninstall()
            base = os.path.join(spec.trace_dir, f"worker-{worker_id}")
            with contextlib.suppress(OSError):
                write_artifacts(
                    rec, base,
                    extra_meta={"role": "fleet-worker", "worker": worker_id},
                )
        with contextlib.suppress(OSError):
            sock.close()


def _worker_main(
    spec_dict: "dict[str, Any]", worker_id: str, index: int, ctl_path: str
) -> None:
    """Entry point of one fleet worker process (spawn target)."""
    logging.basicConfig(level=logging.WARNING)
    spec = FleetSpec(**spec_dict)
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_worker_async(spec, worker_id, index, ctl_path))


# ---------------------------------------------------------------------------
# Manager (parent process)
# ---------------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    worker_id: str
    index: int
    proc: "multiprocessing.process.BaseProcess"
    view: WorkerView
    #: dup of the unix-connection socket used for sendmsg/SCM_RIGHTS
    #: (the asyncio transport owns the original; the manager never
    #: writes through the transport, so ordering cannot interleave).
    ctl_sock: Optional[socket.socket] = None
    control_port: Optional[int] = None
    telemetry_port: Optional[int] = None
    pid: Optional[int] = None
    drained: "asyncio.Event" = field(default_factory=asyncio.Event)


class FleetManager:
    """Spawns, fronts, supervises, and drains a relay-worker fleet.

    Usage::

        fleet = await FleetManager(FleetSpec(workers=4)).start()
        ...  # clients dial fleet.host:fleet.port as a normal outer server
        await fleet.drain("w0")       # graceful: migrate then exit
        await fleet.stop()
    """

    def __init__(self, spec: FleetSpec) -> None:
        spec.mode = resolve_mode(spec.mode)
        self.spec = spec
        self.placer = LeastLoadedPlacer()
        self.admission = AdmissionControl(spec.max_chains_per_client)
        self.handles: "Dict[str, _WorkerHandle]" = {}
        self.port: int = spec.port
        self._ctl_dir: Optional[str] = None
        self._ctl_server: Optional[asyncio.AbstractServer] = None
        self._front_sock: Optional[socket.socket] = None
        self._accept_task: Optional[asyncio.Task] = None
        self._reserve_sock: Optional[socket.socket] = None
        self._hello_events: "Dict[str, asyncio.Event]" = {}
        self._stopped = False

    @property
    def host(self) -> str:
        return self.spec.host

    @property
    def views(self) -> "Dict[str, WorkerView]":
        return {wid: h.view for wid, h in self.handles.items()}

    def worker_ids(self) -> "list[str]":
        return sorted(self.handles)

    # -- lifecycle --------------------------------------------------------

    async def start(self, *, hello_timeout: float = 60.0) -> "FleetManager":
        spec = self.spec
        self._ctl_dir = tempfile.mkdtemp(prefix="repro-fleet-")
        ctl_path = os.path.join(self._ctl_dir, "ctl.sock")
        self._ctl_server = await asyncio.start_unix_server(
            self._on_worker_channel, path=ctl_path
        )

        if spec.mode == "reuseport":
            # Reserve the shared port: bound with SO_REUSEPORT but
            # never listening, so it takes no share of the kernel's
            # spread while keeping the number stable for workers.
            reserve = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            reserve.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            reserve.bind((spec.host, spec.port))
            self._reserve_sock = reserve
            spec.port = reserve.getsockname()[1]
            self.port = spec.port

        ctx = multiprocessing.get_context("spawn")
        spec_dict = asdict(spec)
        for index in range(spec.workers):
            wid = f"w{index}"
            view = WorkerView(wid)
            proc = ctx.Process(
                target=_worker_main,
                args=(spec_dict, wid, index, ctl_path),
                name=f"repro-fleet-{wid}",
                daemon=True,
            )
            self.handles[wid] = _WorkerHandle(wid, index, proc, view)
            self._hello_events[wid] = asyncio.Event()
            self.placer.add_worker(view)
            proc.start()

        try:
            await asyncio.wait_for(
                asyncio.gather(
                    *(ev.wait() for ev in self._hello_events.values())
                ),
                hello_timeout,
            )
        except asyncio.TimeoutError:
            missing = [
                wid for wid, ev in self._hello_events.items() if not ev.is_set()
            ]
            await self.stop()
            raise RuntimeError(
                f"fleet workers never reported in: {missing}"
            ) from None

        if spec.mode == "handoff":
            front = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            front.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            front.bind((spec.host, spec.port))
            front.listen(128)
            front.setblocking(False)
            self._front_sock = front
            self.port = front.getsockname()[1]
            self._accept_task = asyncio.get_running_loop().create_task(
                self._accept_loop()
            )
        log.info(
            "fleet up: %d workers, mode=%s, %s:%d",
            spec.workers, spec.mode, spec.host, self.port,
        )
        return self

    async def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._accept_task is not None:
            self._accept_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._accept_task
        if self._front_sock is not None:
            with contextlib.suppress(OSError):
                self._front_sock.close()
        for handle in self.handles.values():
            if handle.view.state != WORKER_GONE:
                await self._ctl_send(handle, {"op": "stop"})
        await self._join_all(timeout=10.0)
        for handle in self.handles.values():
            if handle.ctl_sock is not None:
                with contextlib.suppress(OSError):
                    handle.ctl_sock.close()
        if self._ctl_server is not None:
            self._ctl_server.close()
            with contextlib.suppress(Exception):
                await self._ctl_server.wait_closed()
        if self._reserve_sock is not None:
            with contextlib.suppress(OSError):
                self._reserve_sock.close()
        if self._ctl_dir is not None:
            with contextlib.suppress(OSError):
                os.unlink(os.path.join(self._ctl_dir, "ctl.sock"))
            with contextlib.suppress(OSError):
                os.rmdir(self._ctl_dir)

    async def _join_all(self, timeout: float) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        for handle in self.handles.values():
            while handle.proc.is_alive() and loop.time() < deadline:
                await asyncio.sleep(0.05)
            if handle.proc.is_alive():
                handle.proc.terminate()
            handle.view.state = WORKER_GONE

    # -- drain ------------------------------------------------------------

    async def drain(
        self,
        worker_id: str,
        *,
        grace_s: Optional[float] = None,
        timeout: float = 30.0,
    ) -> None:
        """Gracefully retire one worker: no new chains are placed on
        it, idle chains are aborted immediately, busy chains get the
        grace period before being aborted into client redials.
        Returns once the worker reported ``drained`` and exited."""
        handle = self.handles.get(worker_id)
        if handle is None:
            raise KeyError(f"no such worker {worker_id!r}")
        if handle.view.state == WORKER_GONE:
            return
        if handle.view.state != WORKER_DRAINING:
            handle.view.state = WORKER_DRAINING
            self.placer.stats.drains_started += 1
            await self._ctl_send(
                handle, {"op": "drain", "grace_s": grace_s}
            )
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(handle.drained.wait(), timeout)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 5.0
        while handle.proc.is_alive() and loop.time() < deadline:
            await asyncio.sleep(0.05)
        if handle.proc.is_alive():
            handle.proc.terminate()
        handle.view.state = WORKER_GONE
        self.placer.remove_worker(worker_id)

    # -- worker control channel ------------------------------------------

    async def _on_worker_channel(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        handle: Optional[_WorkerHandle] = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    msg = json.loads(line)
                except ValueError:
                    continue
                op = msg.get("op")
                if op == "hello":
                    handle = self.handles.get(str(msg.get("worker")))
                    if handle is None:
                        break
                    handle.pid = msg.get("pid")
                    handle.control_port = msg.get("control_port")
                    handle.telemetry_port = msg.get("telemetry_port")
                    raw = writer.get_extra_info("socket")
                    handle.ctl_sock = socket.socket(
                        fileno=os.dup(raw.fileno())
                    )
                    self._hello_events[handle.worker_id].set()
                elif handle is None:
                    continue
                elif op == "hb":
                    if handle.view.state == WORKER_UP and (
                        msg.get("state") == WORKER_DRAINING
                    ):
                        handle.view.state = WORKER_DRAINING
                    handle.view.observe(
                        asyncio.get_running_loop().time(),
                        int(msg.get("bytes_relayed", 0)),
                        int(msg.get("active_chains", 0)),
                    )
                    handle.view.extra["edge_throttle_waits"] = int(
                        msg.get("edge_throttle_waits", 0)
                    )
                elif op == "closed":
                    client = str(msg.get("client", ""))
                    if client:
                        self.admission.release(client)
                elif op == "drained":
                    self.placer.stats.drains_completed += 1
                    handle.drained.set()
        except (ConnectionError, OSError):
            pass
        finally:
            if handle is not None and handle.view.state != WORKER_GONE:
                if not handle.proc.is_alive():
                    handle.view.state = WORKER_GONE
            with contextlib.suppress(Exception):
                writer.close()

    async def _ctl_send(
        self,
        handle: _WorkerHandle,
        msg: "dict[str, Any]",
        fds: "Optional[list[int]]" = None,
    ) -> None:
        """Send one control message (+ optional fds) to a worker.

        All manager→worker traffic goes through the raw dup'd socket —
        never the asyncio writer — so SCM_RIGHTS sends can't interleave
        with buffered transport writes.  The socket is non-blocking
        (shared flags with the transport fd); tiny messages make EAGAIN
        rare, and a short async retry absorbs it.
        """
        sock = handle.ctl_sock
        if sock is None:
            raise OSError("worker control channel not established")
        payload = memoryview(
            json.dumps(msg, separators=(",", ":")).encode() + b"\n"
        )
        attach = list(fds) if fds else []
        while payload.nbytes:
            try:
                if attach:
                    sent = socket.send_fds(sock, [payload], attach)
                    attach = []
                else:
                    sent = sock.send(payload)
            except (BlockingIOError, InterruptedError):
                await asyncio.sleep(0.005)
                continue
            payload = payload[sent:]

    # -- front door (handoff mode) ---------------------------------------

    async def _accept_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                conn, addr = await loop.sock_accept(self._front_sock)
            except OSError:
                return  # front socket closed under us — shutdown
            loop.create_task(self._admit(conn, addr))

    async def _reject(self, conn: socket.socket, reason: str) -> None:
        loop = asyncio.get_running_loop()
        line = json.dumps(
            {"ok": False, "error": reason}, separators=(",", ":")
        ).encode() + b"\n"
        with contextlib.suppress(OSError):
            await loop.sock_sendall(conn, line)
        with contextlib.suppress(OSError):
            conn.close()

    async def _admit(
        self, conn: socket.socket, addr: "tuple[str, int]"
    ) -> None:
        """Admission + placement + FD handoff for one accepted
        connection.  The socket was never wrapped in a transport, so
        the request bytes are still intact in the kernel buffer when
        the fd reaches the worker."""
        client = addr[0]
        chain_key = f"{addr[0]}:{addr[1]}"
        stats = self.placer.stats
        if not self.admission.admit(client):
            stats.rejected_quota += 1
            await self._reject(conn, "per-client chain quota exceeded")
            return
        wid, _method = self.placer.place(
            chain_key, self.views, asyncio.get_running_loop().time()
        )
        if wid is None:
            self.admission.release(client)
            await self._reject(conn, "no healthy relay workers")
            return
        handle = self.handles[wid]
        msg = {"op": "handoff", "fds": 1, "client": client, "chain": chain_key}
        try:
            await self._ctl_send(handle, msg, fds=[conn.fileno()])
        except OSError:
            self.admission.release(client)
            handle.view.state = WORKER_GONE
            await self._reject(conn, "relay worker unavailable")
            return
        stats.handoffs += 1
        # Optimistic bump so back-to-back placements see the new chain
        # before the worker's next heartbeat lands.
        handle.view.active_chains += 1
        with contextlib.suppress(OSError):
            conn.close()

    # -- observability ----------------------------------------------------

    def snapshot(self) -> "dict[str, Any]":
        """Fleet-wide counters; key schema shared with the sim mirror
        (:meth:`repro.core.fleet.SimFleet.snapshot`)."""
        return fleet_snapshot(
            self.spec.mode,
            (h.view for h in self.handles.values()),
            self.placer.stats,
            edge_throttle_waits=sum(
                int(h.view.extra.get("edge_throttle_waits", 0))
                for h in self.handles.values()
            ),
        )
