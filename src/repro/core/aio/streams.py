"""GridFTP-style parallel-stream bulk transfers (striping layer).

The NorduGrid and Pamela GridFTP evaluations (PAPERS.md) both find
that striping one logical transfer across *k* parallel TCP streams is
the single biggest lever for wide-area bulk throughput: each stream
ratchets its own congestion/flow-control window, so the aggregate is
no longer bounded by one window-per-RTT pipe.  This module layers the
same idea over relay chains: a logical transfer is split into
offset-tagged blocks sprayed over *k* independent connections (each
one a full relay chain through the nxport), with GridFTP-style
*restart markers* flowing back so a dying stream never restarts the
transfer from offset 0.

Wire format (per stream)
------------------------

Each stream begins with one newline-terminated JSON hello::

    {"stripe": 1, "xfer": ID, "stream": i, "streams": k,
     "total": N, "block": B}

after which both directions speak fixed 13-byte binary frames
(``!BQI`` — type u8, offset u64, length u32):

* ``BLOCK`` (sender→sink) — ``length`` payload bytes at ``offset``;
  sent with one scatter-gather :func:`~repro.core.aio.pump.send_segments`
  (header alongside a ``memoryview`` of the source buffer — zero-copy).
* ``END``   (sender→sink) — this stream will send no more blocks.
* ``MARK``  (sink→sender) — restart marker: every byte below
  ``offset`` has been received contiguously.  The sink emits one
  whenever its contiguous watermark advances, and immediately on any
  (re)joining stream, so a replacement stream learns the watermark
  before it sends a byte.

The sender requeues a dead stream's unacknowledged blocks (those at or
above the latest restart marker) onto its siblings and, by default,
dials a replacement stream — the transfer completes without
retransmitting anything the sink already acknowledged.  The sink
reassembles out-of-order blocks in place in a preallocated buffer and
drops duplicates (a requeued block racing its original).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import struct
import uuid
from collections import deque
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from repro.core.aio.protocol import ProtocolError, parse_control_line
from repro.core.aio.pump import maybe_drain, send_segments, tune_stream
from repro.obs import spans as _obs

__all__ = [
    "DEFAULT_BLOCK",
    "DEFAULT_STREAMS",
    "StripeError",
    "StripeSink",
    "send_striped",
    "recv_striped",
]

#: Default stripe block size.  Large enough that per-block framing and
#: restart markers are noise; small enough that k streams interleave.
DEFAULT_BLOCK = 256 * 1024
#: Default stream count (the GridFTP literature's sweet spot is 4-8).
DEFAULT_STREAMS = 4
#: Default per-stream inflight window, in blocks.  A stream stalls once
#: this many of its blocks sit above the sink's restart marker — the
#: stripe-level analogue of a TCP window, and the reason k streams beat
#: one: aggregate inflight scales with k while each stream's burst (and
#: the sink's reorder buffer per stream) stays bounded.
DEFAULT_WINDOW = 32

#: Per-stream frame header: type, offset, length.
_FRAME = struct.Struct("!BQI")

_BLOCK = 1
_END = 2
_MARK = 3

ConnectFn = Callable[[], Awaitable[Tuple[asyncio.StreamReader, asyncio.StreamWriter]]]


class StripeError(ConnectionError):
    """A striped transfer could not complete."""


def _hello_line(xfer: str, stream: int, streams: int, total: int, block: int) -> bytes:
    return (
        json.dumps(
            {"stripe": 1, "xfer": xfer, "stream": stream, "streams": streams,
             "total": total, "block": block},
            separators=(",", ":"),
        ).encode()
        + b"\n"
    )


class _StreamDied(Exception):
    """Internal: one stream's connection failed mid-transfer."""

    def __init__(self, inflight: "set[int]") -> None:
        super().__init__("stripe stream died")
        self.inflight = inflight


class _SendState:
    """Shared progress of one striped send across its stream tasks."""

    __slots__ = (
        "view", "total", "block", "pending", "watermark", "bytes_sent",
        "blocks_sent", "requeued_blocks", "reconnects", "_progress",
    )

    def __init__(self, view: memoryview, block: int) -> None:
        self.view = view
        self.total = view.nbytes
        self.block = block
        self.pending: "deque[int]" = deque(range(0, self.total, block))
        #: Contiguous byte count acknowledged by the sink (max MARK seen).
        self.watermark = 0
        self.bytes_sent = 0
        self.blocks_sent = 0
        self.requeued_blocks = 0
        self.reconnects = 0
        self._progress = asyncio.Event()

    @property
    def done(self) -> bool:
        return self.watermark >= self.total

    def notify(self) -> None:
        """Wake every stream waiting on progress (mark or requeue)."""
        event, self._progress = self._progress, asyncio.Event()
        event.set()

    async def wait_progress(self) -> None:
        event = self._progress
        await event.wait()

    def mark(self, offset: int) -> None:
        if offset > self.watermark:
            self.watermark = offset
            self.notify()

    def requeue(self, offsets: "set[int]") -> None:
        """Put a dead stream's unacknowledged blocks back in play.

        Requeued offsets go to the FRONT of the queue.  They sort below
        everything still unsent (they were popped earliest), and the
        sink's restart marker cannot advance past the lowest of them.
        Appended at the tail they hide behind the whole unsent backlog;
        once every surviving stream fills its window with post-gap
        blocks the transfer deadlocks, because windows only drain when
        the watermark moves and the watermark is gated on the requeued
        gap block nobody can reach.
        """
        stale = sorted(
            (o for o in offsets if o + 1 > self.watermark), reverse=True
        )
        for off in stale:
            if off not in self.pending:
                self.pending.appendleft(off)
                self.requeued_blocks += 1
        if stale:
            self.notify()


async def _read_marks(
    reader: asyncio.StreamReader, state: _SendState
) -> None:
    """Consume restart markers from the sink; EOF/garbage ends the
    stream (the caller treats that as stream death)."""
    while True:
        header = await reader.readexactly(_FRAME.size)
        ftype, offset, _length = _FRAME.unpack(header)
        if ftype != _MARK:
            raise StripeError(f"unexpected frame type {ftype} from sink")
        state.mark(offset)
        if state.done:
            return


async def _stream_send_loop(
    writer: asyncio.StreamWriter,
    state: _SendState,
    inflight: "set[int]",
    stream_idx: int,
    window_blocks: int,
    on_block: Optional[Callable[[int, int, int], Any]],
) -> None:
    rec = _obs.RECORDER
    while not state.done:
        if writer.transport.is_closing():
            raise ConnectionResetError("stripe stream transport closing")
        # Acknowledged blocks need no tracking (never requeued).
        if inflight and state.watermark:
            inflight.difference_update(
                [o for o in inflight if o + state.block <= state.watermark]
            )
        if len(inflight) >= window_blocks:
            # Window full: every slot is above the restart marker.  A
            # requeued gap block sorting below this whole window is
            # still sent (window overrun of one): the watermark -- the
            # only thing that drains the window -- cannot advance past
            # it, so parking on it would deadlock once every stream's
            # window holds only post-gap blocks.
            if not (state.pending and state.pending[0] < min(inflight)):
                if rec is not None:
                    rec.count_pair(
                        "stripe.window_stalls", f"s{stream_idx}", 1
                    )
                await state.wait_progress()
                continue
        try:
            offset = state.pending.popleft()
        except IndexError:
            # Nothing to send: either the transfer is draining (marks
            # pending) or another stream's death may requeue work.
            await state.wait_progress()
            continue
        length = min(state.block, state.total - offset)
        inflight.add(offset)
        if on_block is not None:
            on_block(stream_idx, offset, length)
        send_segments(
            writer,
            [_FRAME.pack(_BLOCK, offset, length),
             state.view[offset:offset + length]],
        )
        state.bytes_sent += length
        state.blocks_sent += 1
        if rec is not None:
            rec.count_pair("stripe.stream_bytes", f"s{stream_idx}", length)
        await maybe_drain(writer)
    writer.write(_FRAME.pack(_END, state.watermark, 0))
    await writer.drain()


async def _run_stream(
    stream_idx: int,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    state: _SendState,
    window_blocks: int,
    on_block: Optional[Callable[[int, int, int], Any]],
) -> None:
    """Drive one connected stream until the transfer completes or the
    stream dies (raises :class:`_StreamDied` with its inflight set)."""
    inflight: "set[int]" = set()
    send_task = asyncio.ensure_future(
        _stream_send_loop(
            writer, state, inflight, stream_idx, window_blocks, on_block
        )
    )
    mark_task = asyncio.ensure_future(_read_marks(reader, state))
    try:
        done, _ = await asyncio.wait(
            {send_task, mark_task}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in done:
            exc = task.exception()
            if exc is not None:
                raise exc
        if state.done:
            return
        # A task finished cleanly before completion: the mark reader
        # only returns early on sink EOF — treat as stream death.
        raise ConnectionResetError("sink closed stream early")
    except (ConnectionError, OSError, asyncio.IncompleteReadError, StripeError) as exc:
        raise _StreamDied(inflight) from exc
    finally:
        for task in (send_task, mark_task):
            task.cancel()
        await asyncio.gather(send_task, mark_task, return_exceptions=True)
        with contextlib.suppress(Exception):
            writer.close()


async def send_striped(
    connect: ConnectFn,
    data: "bytes | bytearray | memoryview",
    *,
    streams: int = DEFAULT_STREAMS,
    block_bytes: int = DEFAULT_BLOCK,
    window_blocks: int = DEFAULT_WINDOW,
    xfer_id: Optional[str] = None,
    reconnect: bool = True,
    max_reconnects: int = 4,
    on_block: Optional[Callable[[int, int, int], Any]] = None,
) -> Dict[str, Any]:
    """Send ``data`` striped across ``streams`` parallel connections.

    ``connect`` is awaited once per stream (plus once per replacement
    when ``reconnect`` is on) and must yield a fresh
    ``(reader, writer)`` to the sink — e.g. a relay-chain dial.  Blocks
    are offset-tagged, so streams need no mutual ordering; a stream
    that dies has its unacknowledged blocks requeued onto its siblings
    and (by default) is re-dialed, resuming from the sink's last
    restart marker rather than offset 0.  ``on_block(stream, offset,
    length)`` fires before each block send — a failure-injection and
    progress hook.

    Returns a report dict (bytes/blocks sent including retransmits,
    requeued block count, reconnect count, per-call stream count).

    Raises :class:`StripeError` when the transfer cannot complete
    (every stream dead and reconnect budget exhausted).
    """
    if streams < 1:
        raise ValueError(f"streams must be >= 1, got {streams}")
    if block_bytes < 1:
        raise ValueError(f"block_bytes must be >= 1, got {block_bytes}")
    if window_blocks < 1:
        raise ValueError(f"window_blocks must be >= 1, got {window_blocks}")
    view = memoryview(data)
    if view.ndim != 1 or view.itemsize != 1:
        view = view.cast("B")
    state = _SendState(view, block_bytes)
    xfer = xfer_id or uuid.uuid4().hex[:16]
    rec = _obs.RECORDER
    t0 = rec.wall_ts() if rec is not None else 0.0

    if state.total == 0:
        # Degenerate transfer: one stream still announces itself so
        # the sink learns the (zero) size and completes.
        reader, writer = await connect()
        try:
            writer.write(_hello_line(xfer, 0, streams, 0, block_bytes))
            writer.write(_FRAME.pack(_END, 0, 0))
            await writer.drain()
        finally:
            with contextlib.suppress(Exception):
                writer.close()
        return {
            "xfer": xfer, "streams": 1, "block_bytes": block_bytes,
            "total_bytes": 0, "bytes_sent": 0, "blocks_sent": 0,
            "requeued_blocks": 0, "reconnects": 0,
        }

    async def run_one(idx: int) -> None:
        budget = max_reconnects if reconnect else 0
        while not state.done:
            try:
                reader, writer = await connect()
            except (ConnectionError, OSError) as exc:
                if budget <= 0:
                    raise StripeError(f"stream {idx}: dial failed: {exc}") from exc
                budget -= 1
                await asyncio.sleep(0.02)
                continue
            tune_stream(writer)
            try:
                try:
                    writer.write(
                        _hello_line(xfer, idx, streams, state.total, block_bytes)
                    )
                    await writer.drain()
                except (ConnectionError, OSError) as exc:
                    raise _StreamDied(set()) from exc
                await _run_stream(
                    idx, reader, writer, state, window_blocks, on_block
                )
                return
            except _StreamDied as died:
                state.requeue(died.inflight)
                if state.done:
                    return
                if budget <= 0:
                    raise StripeError(
                        f"stream {idx} died and reconnect budget exhausted"
                    ) from died
                budget -= 1
                state.reconnects += 1
                if rec is not None:
                    rec.wall_instant("stripe", "stream_reconnect",
                                     track=f"stripe:{xfer}", stream=idx)
            finally:
                with contextlib.suppress(Exception):
                    writer.close()

    results = await asyncio.gather(
        *[run_one(i) for i in range(streams)], return_exceptions=True
    )
    if not state.done:
        errors = [r for r in results if isinstance(r, BaseException)]
        raise StripeError(
            f"striped transfer incomplete at watermark {state.watermark}/"
            f"{state.total} ({len(errors)}/{streams} streams failed)"
        ) from (errors[0] if errors else None)
    if rec is not None:
        rec.wall_span_end("stripe", "send", t0, track=f"stripe:{xfer}",
                          bytes=state.total, streams=streams,
                          reconnects=state.reconnects)
    return {
        "xfer": xfer,
        "streams": streams,
        "block_bytes": block_bytes,
        "window_blocks": window_blocks,
        "total_bytes": state.total,
        "bytes_sent": state.bytes_sent,
        "blocks_sent": state.blocks_sent,
        "requeued_blocks": state.requeued_blocks,
        "reconnects": state.reconnects,
    }


class _RecvState:
    """Reassembly state of one striped receive."""

    __slots__ = (
        "xfer", "total", "block", "buf", "received", "watermark",
        "duplicate_blocks", "marks_sent", "streams_seen", "done",
        "_stall_t0",
    )

    def __init__(self, hello: Dict[str, Any]) -> None:
        self.xfer = hello["xfer"]
        self.total = int(hello["total"])
        self.block = int(hello["block"])
        if self.total < 0 or self.block < 1:
            raise ProtocolError(f"bad stripe hello: {hello}")
        self.buf = bytearray(self.total)
        self.received: Dict[int, int] = {}
        self.watermark = 0
        self.duplicate_blocks = 0
        self.marks_sent = 0
        self.streams_seen = 0
        self.done = asyncio.Event()
        self._stall_t0: Optional[float] = None
        if self.total == 0:
            self.done.set()

    def accept_block(self, offset: int, payload: "bytes | memoryview") -> bool:
        """Place one block; returns False for duplicates/garbage."""
        length = len(payload)
        if offset < 0 or offset + length > self.total:
            raise ProtocolError(f"block [{offset}, {offset + length}) out of range")
        if offset in self.received:
            self.duplicate_blocks += 1
            return False
        self.buf[offset:offset + length] = payload
        self.received[offset] = length
        rec = _obs.RECORDER
        if self.watermark == offset:
            while True:
                length_at = self.received.get(self.watermark)
                if length_at is None:
                    break
                self.watermark += length_at
            if self._stall_t0 is not None:
                if rec is not None:
                    rec.wall_span_end("stripe", "reassembly_stall",
                                      self._stall_t0, track=f"stripe:{self.xfer}",
                                      watermark=self.watermark)
                self._stall_t0 = None
            if self.watermark >= self.total:
                self.done.set()
            return True
        # Out-of-order arrival: a gap below this block stalls the
        # contiguous watermark until the missing block lands.
        if self._stall_t0 is None and rec is not None:
            self._stall_t0 = rec.wall_ts()
        return True


async def _recv_stream(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    state: _RecvState,
    stream_idx: int,
) -> None:
    """Serve one sender stream: place its blocks, return restart
    markers whenever the contiguous watermark advances."""
    rec = _obs.RECORDER

    def send_mark() -> None:
        writer.write(_FRAME.pack(_MARK, state.watermark, 0))
        state.marks_sent += 1

    # Immediate marker: a (re)joining stream resumes from the
    # watermark, never from offset 0.
    send_mark()
    await writer.drain()
    try:
        while not state.done.is_set():
            header = await reader.readexactly(_FRAME.size)
            ftype, offset, length = _FRAME.unpack(header)
            if ftype == _END:
                break
            if ftype != _BLOCK:
                raise ProtocolError(f"unexpected frame type {ftype} from sender")
            if length > state.block:
                raise ProtocolError(
                    f"block length {length} exceeds stripe block {state.block}"
                )
            payload = await reader.readexactly(length) if length else b""
            before = state.watermark
            state.accept_block(offset, payload)
            if rec is not None:
                rec.count_pair("stripe.sink_bytes", f"s{stream_idx}", length)
            if state.watermark > before or state.done.is_set():
                send_mark()
                await maybe_drain(writer)
    finally:
        # Flush the final marker (the sender's completion signal).
        with contextlib.suppress(Exception):
            await writer.drain()
        with contextlib.suppress(Exception):
            writer.close()


class StripeSink:
    """Long-lived striped-transfer sink over one accept source.

    Owns the accept loop for its whole lifetime and serves any number
    of *sequential* transfers via :meth:`recv`.  Unlike the one-shot
    :func:`recv_striped` wrapper, the sink remembers the final
    watermark of every transfer it completed and answers a stream that
    (re)dials *after* its transfer already finished with that final
    restart marker.  Without that memory, a sender whose stream died
    in the same instant the last block landed (a drained relay worker
    aborting chains, say) redials into a sink that no longer knows the
    transfer and waits forever for a marker that will never come — so
    any caller whose senders can redial across a transfer boundary
    (worker drains, sequential sub-transfers on one listener) must
    hold a sink open until the *senders* report completion, not merely
    until the payload arrives.
    """

    def __init__(
        self,
        accept: ConnectFn,
        *,
        on_stream: Optional[Callable[[int], Any]] = None,
        remember: int = 64,
    ) -> None:
        self._accept = accept
        self._on_stream = on_stream
        #: xfer id -> final watermark of transfers served to completion
        #: (insertion-ordered; trimmed to the ``remember`` newest).
        self._completed: "Dict[str, int]" = {}
        self._remember = remember
        self._state: Optional[_RecvState] = None
        self._first: "Optional[asyncio.Future[None]]" = None
        self._handlers: "set[asyncio.Task]" = set()
        self._acceptor = asyncio.ensure_future(self._accept_loop())

    async def _accept_loop(self) -> None:
        while True:
            reader, writer = await self._accept()
            task = asyncio.ensure_future(self._handle(reader, writer))
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        tune_stream(writer)
        try:
            line = await reader.readline()
            hello = parse_control_line(line)
            if hello.get("stripe") != 1:
                raise ProtocolError(f"not a stripe hello: {hello!r}")
            xfer = hello.get("xfer")
            if xfer in self._completed:
                # Redial raced transfer completion: hand the sender
                # the final marker so it observes the full watermark.
                writer.write(_FRAME.pack(_MARK, self._completed[xfer], 0))
                await writer.drain()
                return
            if self._state is None:
                if self._first is None or self._first.done():
                    # No recv() pending: a stray stream for a transfer
                    # nobody is (or will be) assembling.  Closing it
                    # reads as stream death on the sender.
                    return
                self._state = _RecvState(hello)
                self._first.set_result(None)
            elif xfer != self._state.xfer:
                raise ProtocolError(f"stream for foreign transfer {xfer!r}")
            state = self._state
            state.streams_seen += 1
            idx = int(hello.get("stream", state.streams_seen - 1))
            if self._on_stream is not None:
                self._on_stream(idx)
            await _recv_stream(reader, writer, state, idx)
        except (ProtocolError, ValueError) as exc:
            if self._first is not None and not self._first.done():
                self._first.set_exception(StripeError(str(exc)))
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            # Stream died mid-transfer: the sender requeues; nothing
            # to do here but release the socket.
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def recv(self) -> Tuple[bytes, Dict[str, Any]]:
        """Receive the next striped transfer; returns ``(data, report)``.

        The first stream's hello sizes the reassembly buffer; streams
        may join (and rejoin after a reconnect) at any point until the
        transfer completes.
        """
        if self._acceptor.done():
            raise StripeError("stripe sink is closed")
        if self._state is not None or self._first is not None:
            raise StripeError("a recv() is already in progress")
        self._first = asyncio.get_running_loop().create_future()
        try:
            await self._first
            state = self._state
            assert state is not None
            await state.done.wait()
        finally:
            self._first = None
            self._state = None
        self._completed[state.xfer] = state.watermark
        while len(self._completed) > self._remember:
            del self._completed[next(iter(self._completed))]
        report = {
            "xfer": state.xfer,
            "total_bytes": state.total,
            "streams_seen": state.streams_seen,
            "duplicate_blocks": state.duplicate_blocks,
            "marks_sent": state.marks_sent,
        }
        return bytes(state.buf), report

    async def close(self, *, grace_s: float = 1.0) -> None:
        """Stop accepting; give in-flight handlers ``grace_s`` to flush
        their final restart markers, then cancel any stragglers."""
        self._acceptor.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._acceptor
        if self._handlers:
            _done, pending = await asyncio.wait(
                set(self._handlers), timeout=grace_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)


async def recv_striped(
    accept: ConnectFn,
    *,
    on_stream: Optional[Callable[[int], Any]] = None,
) -> Tuple[bytes, Dict[str, Any]]:
    """Receive one striped transfer; returns ``(data, report)``.

    ``accept`` is awaited repeatedly and must yield the next inbound
    ``(reader, writer)`` stream — e.g. ``listener.accept``.  The first
    stream's hello sizes the reassembly buffer; streams may join (and
    rejoin after a reconnect) at any point until the transfer
    completes.  ``on_stream(index)`` fires as each stream's hello is
    accepted.

    One-shot: accepting stops the moment the payload is complete, so a
    sender stream that redials *after* that point hangs waiting for
    its first restart marker.  When senders can redial across the
    completion boundary (relay-worker drains, back-to-back transfers
    on one listener), use :class:`StripeSink` and keep it open until
    the sender reports completion.
    """
    sink = StripeSink(accept, on_stream=on_stream)
    try:
        return await sink.recv()
    finally:
        await sink.close()
