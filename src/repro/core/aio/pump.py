"""Socket tuning and the adaptive relay pump for the live data plane.

The seed relay read fixed 4 KB chunks and awaited ``drain()`` after
every single ``write()`` — one coroutine suspension and one scheduler
round-trip per 4 KB, with Nagle's algorithm batching the small control
round-trips underneath.  GridFTP-style tuning work (NorduGrid, Pamela)
shows that buffer sizing dominates user-level relay throughput, so the
live pump now:

* grows its read size from ``MIN_CHUNK`` (4 KB) toward ``MAX_CHUNK``
  (256 KB) while the writer stays un-backpressured, and shrinks it
  again when backpressure appears;
* only awaits ``drain()`` when the transport's write buffer has
  actually crossed its high-water mark (``drain()`` is a no-op wait
  below the mark, but the await itself costs a scheduling round-trip
  per chunk — the dominant per-chunk cost on loopback);
* sets ``TCP_NODELAY`` on every relay socket and widens the
  transport's write-buffer limits, so latency-sensitive control
  round-trips never ride Nagle defaults.

``pump()`` is the single shared copy loop: both directions of an
active (Fig. 3) relay, both legs of a legacy passive chain, and both
socket-facing halves of a mux chain use it.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket as _socket
from typing import Callable, Optional

from repro.obs import spans as _obs

__all__ = [
    "MIN_CHUNK",
    "MAX_CHUNK",
    "STREAM_LIMIT",
    "WRITE_HIGH_WATER",
    "AdaptiveChunker",
    "tune_stream",
    "writer_backpressured",
    "maybe_drain",
    "pump",
]

#: Starting (and legacy fixed) relay read size.
MIN_CHUNK = 4096
#: Ceiling the adaptive pump grows toward.
MAX_CHUNK = 256 * 1024
#: ``limit=`` for every StreamReader the relay creates — one full-size
#: adaptive chunk can be buffered without forcing a short read.
STREAM_LIMIT = 2 * MAX_CHUNK
#: Write-buffer high-water mark for relay transports.
WRITE_HIGH_WATER = 2 * MAX_CHUNK


class AdaptiveChunker:
    """Multiplicative-increase read sizing for one pump direction.

    Doubles after every full-size un-backpressured read, halves on
    backpressure; clamped to ``[min_chunk, max_chunk]``.  A fixed-size
    policy is the degenerate ``min_chunk == max_chunk`` case.
    """

    __slots__ = ("size", "min_chunk", "max_chunk")

    def __init__(self, min_chunk: int = MIN_CHUNK, max_chunk: int = MAX_CHUNK) -> None:
        if min_chunk <= 0 or max_chunk < min_chunk:
            raise ValueError(f"bad chunk bounds [{min_chunk}, {max_chunk}]")
        self.min_chunk = min_chunk
        self.max_chunk = max_chunk
        self.size = min_chunk

    def on_read(self, nbytes: int) -> None:
        """Grow only when the read filled the current budget (the
        source is keeping up)."""
        if nbytes >= self.size:
            self.size = min(self.size * 2, self.max_chunk)

    def on_backpressure(self) -> None:
        self.size = max(self.size // 2, self.min_chunk)


def tune_stream(
    writer: asyncio.StreamWriter,
    *,
    nodelay: bool = True,
    high_water: int = WRITE_HIGH_WATER,
) -> None:
    """Apply relay socket tuning to a connected stream.

    Best-effort: transports without a raw socket (tests, TLS wrappers)
    are left alone rather than failed.
    """
    if nodelay:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
    with contextlib.suppress(Exception):
        writer.transport.set_write_buffer_limits(high=high_water)


def writer_backpressured(writer: asyncio.StreamWriter) -> bool:
    """True when the transport's write buffer crossed its high-water
    mark — the only time ``drain()`` can actually wait."""
    transport = writer.transport
    try:
        high = transport.get_write_buffer_limits()[1]
        return transport.get_write_buffer_size() >= high
    except (AttributeError, NotImplementedError):
        # No flow-control introspection: fall back to always draining.
        return True


async def maybe_drain(writer: asyncio.StreamWriter) -> bool:
    """Drain only past the high-water mark; returns whether it drained."""
    if writer_backpressured(writer):
        await writer.drain()
        return True
    return False


async def pump(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    chunker: Optional[AdaptiveChunker] = None,
    fixed_chunk: Optional[int] = None,
    on_chunk: Optional[Callable[[int], None]] = None,
) -> int:
    """Copy ``reader`` → ``writer`` until EOF/error; half-close; return
    bytes moved.

    ``chunker`` selects the adaptive policy; passing ``fixed_chunk``
    instead reproduces the seed behaviour (fixed reads, drain after
    every write) for baseline benchmarking.
    """
    moved = 0
    adaptive = fixed_chunk is None
    if adaptive and chunker is None:
        chunker = AdaptiveChunker()
    try:
        while True:
            data = await reader.read(chunker.size if adaptive else fixed_chunk)
            if not data:
                break
            n = len(data)
            moved += n
            if on_chunk is not None:
                on_chunk(n)
            writer.write(data)
            if adaptive:
                if await maybe_drain(writer):
                    chunker.on_backpressure()
                    rec = _obs.RECORDER
                    if rec is not None:
                        rec.wall_instant("pump", "backpressure", track="pump",
                                         chunk=chunker.size)
                else:
                    chunker.on_read(n)
            else:
                await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError, OSError):
        pass
    finally:
        # Satellite fix: drain *before* write_eof so the tail of a
        # write-then-close stream is flushed, not discarded with the
        # transport.
        with contextlib.suppress(Exception):
            await writer.drain()
        with contextlib.suppress(Exception):
            writer.write_eof()
    return moved
