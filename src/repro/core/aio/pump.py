"""Socket tuning and the adaptive relay pump for the live data plane.

The seed relay read fixed 4 KB chunks and awaited ``drain()`` after
every single ``write()`` — one coroutine suspension and one scheduler
round-trip per 4 KB, with Nagle's algorithm batching the small control
round-trips underneath.  GridFTP-style tuning work (NorduGrid, Pamela)
shows that buffer sizing dominates user-level relay throughput, so the
live pump now:

* grows its read size from ``MIN_CHUNK`` (4 KB) toward ``MAX_CHUNK``
  (256 KB) while the writer stays un-backpressured, and shrinks it
  again when backpressure appears;
* only awaits ``drain()`` when the transport's write buffer has
  actually crossed its high-water mark (``drain()`` is a no-op wait
  below the mark, but the await itself costs a scheduling round-trip
  per chunk — the dominant per-chunk cost on loopback);
* sets ``TCP_NODELAY`` on every relay socket and widens the
  transport's write-buffer limits, so latency-sensitive control
  round-trips never ride Nagle defaults.

``pump()`` is the single shared copy loop for stream-based legs; on
top of it this module now provides the *zero-copy* primitives the hot
bulk path runs on:

* :func:`send_segments` — scatter-gather writes: when the transport's
  buffer is empty the segment list goes straight to the kernel with
  one ``socket.sendmsg``, so frame headers ride alongside payload
  ``memoryview``\\ s without ever being concatenated; only the
  backpressured remainder is copied into the transport.
* :class:`SegmentBatcher` — per-connection small-frame coalescing:
  frames queued in one event-loop tick are flushed together (one
  ``sendmsg`` per drain), bounded by a configurable coalesce budget.
* :func:`relay_sockets_zero_copy` — swaps an established
  socket↔socket relay leg from stream pumps to a pair of
  ``asyncio.BufferedProtocol`` ends whose reads land in a reusable
  ``memoryview`` ring buffer (``recv_into`` instead of ``recv``) and
  are forwarded inside the read callback — no per-chunk task wake-up,
  no StreamReader buffering, and no copy at all when the destination
  socket takes the bytes immediately.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import socket as _socket
from typing import Callable, List, Optional, Sequence, Union

from repro.core.aio.protocol import steal_reader_buffer
from repro.obs import spans as _obs

__all__ = [
    "MIN_CHUNK",
    "MAX_CHUNK",
    "STREAM_LIMIT",
    "WRITE_HIGH_WATER",
    "COALESCE_BUDGET",
    "AdaptiveChunker",
    "SegmentBatcher",
    "tune_stream",
    "writer_backpressured",
    "maybe_drain",
    "pump",
    "segment_nbytes",
    "send_segments",
    "relay_sockets_zero_copy",
    "steal_reader_buffer",
]

#: Starting (and legacy fixed) relay read size.
MIN_CHUNK = 4096
#: Ceiling the adaptive pump grows toward.
MAX_CHUNK = 256 * 1024
#: ``limit=`` for every StreamReader the relay creates — one full-size
#: adaptive chunk can be buffered without forcing a short read.
STREAM_LIMIT = 2 * MAX_CHUNK
#: Write-buffer high-water mark for relay transports.
WRITE_HIGH_WATER = 2 * MAX_CHUNK
#: Default coalesce budget: once this many bytes are pending in a
#: :class:`SegmentBatcher` the batch is flushed immediately instead of
#: waiting for the end of the event-loop tick.
COALESCE_BUDGET = 64 * 1024
#: ``sendmsg`` vector-length cap (conservative portable IOV_MAX).
_IOV_MAX = 512

Segment = Union[bytes, bytearray, memoryview]


class AdaptiveChunker:
    """Multiplicative-increase read sizing for one pump direction.

    Doubles after every full-size un-backpressured read, halves on
    backpressure; clamped to ``[min_chunk, max_chunk]``.  A fixed-size
    policy is the degenerate ``min_chunk == max_chunk`` case.
    """

    __slots__ = ("size", "min_chunk", "max_chunk")

    def __init__(self, min_chunk: int = MIN_CHUNK, max_chunk: int = MAX_CHUNK) -> None:
        if min_chunk <= 0 or max_chunk < min_chunk:
            raise ValueError(f"bad chunk bounds [{min_chunk}, {max_chunk}]")
        self.min_chunk = min_chunk
        self.max_chunk = max_chunk
        self.size = min_chunk

    def on_read(self, nbytes: int) -> None:
        """Grow only when the read filled the current budget (the
        source is keeping up)."""
        if nbytes >= self.size:
            self.size = min(self.size * 2, self.max_chunk)

    def on_backpressure(self) -> None:
        self.size = max(self.size // 2, self.min_chunk)


def tune_stream(
    writer: asyncio.StreamWriter,
    *,
    nodelay: bool = True,
    high_water: int = WRITE_HIGH_WATER,
) -> None:
    """Apply relay socket tuning to a connected stream.

    Best-effort: transports without a raw socket (tests, TLS wrappers)
    are left alone rather than failed.
    """
    if nodelay:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)
    with contextlib.suppress(Exception):
        writer.transport.set_write_buffer_limits(high=high_water)


def writer_backpressured(writer: asyncio.StreamWriter) -> bool:
    """True when the transport's write buffer crossed its high-water
    mark — the only time ``drain()`` can actually wait."""
    transport = writer.transport
    try:
        high = transport.get_write_buffer_limits()[1]
        return transport.get_write_buffer_size() >= high
    except (AttributeError, NotImplementedError):
        # No flow-control introspection: fall back to always draining.
        return True


async def maybe_drain(writer: asyncio.StreamWriter) -> bool:
    """Drain only past the high-water mark; returns whether it drained."""
    if writer_backpressured(writer):
        await writer.drain()
        return True
    return False


async def pump(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    *,
    chunker: Optional[AdaptiveChunker] = None,
    fixed_chunk: Optional[int] = None,
    on_chunk: Optional[Callable[[int], None]] = None,
    limiter: "Optional[object]" = None,
) -> int:
    """Copy ``reader`` → ``writer`` until EOF/error; half-close; return
    bytes moved.

    ``chunker`` selects the adaptive policy; passing ``fixed_chunk``
    instead reproduces the seed behaviour (fixed reads, drain after
    every write) for baseline benchmarking.  ``limiter`` (any object
    with ``await acquire(nbytes)``, e.g. a fleet edge
    :class:`repro.core.placement.TokenBucket`) debits every chunk
    before it is written, turning the pump into a rate-capped leg.
    """
    moved = 0
    adaptive = fixed_chunk is None
    if adaptive and chunker is None:
        chunker = AdaptiveChunker()
    try:
        while True:
            data = await reader.read(chunker.size if adaptive else fixed_chunk)
            if not data:
                break
            n = len(data)
            moved += n
            if limiter is not None:
                await limiter.acquire(n)
            if on_chunk is not None:
                on_chunk(n)
            writer.write(data)
            if adaptive:
                if await maybe_drain(writer):
                    chunker.on_backpressure()
                    rec = _obs.RECORDER
                    if rec is not None:
                        rec.wall_instant("pump", "backpressure", track="pump",
                                         chunk=chunker.size)
                else:
                    chunker.on_read(n)
            else:
                await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError, OSError):
        pass
    finally:
        # Satellite fix: drain *before* write_eof so the tail of a
        # write-then-close stream is flushed, not discarded with the
        # transport.
        with contextlib.suppress(Exception):
            await writer.drain()
        with contextlib.suppress(Exception):
            writer.write_eof()
    return moved


# ---------------------------------------------------------------------------
# Zero-copy write side: scatter-gather sends and frame coalescing.
# ---------------------------------------------------------------------------


def segment_nbytes(segments: Sequence[Segment]) -> int:
    """Total payload bytes across a segment list."""
    total = 0
    for seg in segments:
        total += seg.nbytes if isinstance(seg, memoryview) else len(seg)
    return total


def _queue_remainder(
    transport: asyncio.Transport, segments: Sequence[Segment], skip: int
) -> None:
    """Copy everything past the first ``skip`` bytes into the
    transport's write buffer (the one copy on the backpressure path)."""
    rem = bytearray()
    for seg in segments:
        n = seg.nbytes if isinstance(seg, memoryview) else len(seg)
        if skip >= n:
            skip -= n
            continue
        if skip:
            rem += memoryview(seg)[skip:]
            skip = 0
        else:
            rem += seg
    if rem:
        transport.write(bytes(rem))


#: ``os.writev`` is the scatter-gather syscall the direct path rides;
#: absent (non-POSIX) platforms fall back to transport writes.
_HAVE_WRITEV = hasattr(os, "writev")


def transport_fd(transport: asyncio.BaseTransport) -> Optional[int]:
    """The raw socket file descriptor behind a transport, or ``None``.

    asyncio wraps sockets in ``TransportSocket``, which hides the send
    methods — but the fd is enough for direct ``os.write``/``writev``.
    """
    sock = transport.get_extra_info("socket")
    if sock is None:
        return None
    try:
        fd = sock.fileno()
    except (OSError, ValueError):
        return None
    return fd if fd >= 0 else None


def _sendmsg_direct(
    transport: asyncio.Transport,
    fd: Optional[int],
    segments: Sequence[Segment],
    total: int,
) -> None:
    """Push a segment list out with one ``writev`` when the transport
    is idle, queueing only the unsent remainder.

    Ordering is safe exactly when the transport's own buffer is empty:
    nothing queued can be overtaken by the direct send.  Any error on
    the direct path falls back to the transport, whose own machinery
    surfaces the failure.
    """
    sent = 0
    if (
        fd is not None
        and _HAVE_WRITEV
        and not transport.is_closing()
        and transport.get_write_buffer_size() == 0
    ):
        vec = segments if len(segments) <= _IOV_MAX else segments[:_IOV_MAX]
        try:
            sent = os.writev(fd, vec)
        except (BlockingIOError, InterruptedError):
            sent = 0
        except OSError:
            sent = 0
    if sent < total:
        _queue_remainder(transport, segments, sent)


def send_segments(writer: asyncio.StreamWriter, segments: Sequence[Segment]) -> int:
    """Scatter-gather write of header/payload segments.

    The zero-copy replacement for ``writer.write(header + payload)``:
    when the transport's write buffer is empty the segments go to the
    kernel in one ``writev`` without ever being joined; under
    backpressure the remainder is copied once into the transport, which
    keeps asyncio's flow control exact.  Returns the byte total.
    """
    total = segment_nbytes(segments)
    if total == 0:
        return 0
    _sendmsg_direct(
        writer.transport, transport_fd(writer.transport), segments, total
    )
    return total


class SegmentBatcher:
    """Small-frame coalescing for one connection.

    Frames queued within a single event-loop tick are flushed together
    with one :func:`send_segments` call (one ``sendmsg`` per drain), so
    a burst of small mux frames — WINDOW updates, tiny DATA frames from
    chatty chains — costs one syscall instead of one each.  A flush
    happens no later than the next loop iteration (``call_soon``), or
    immediately once the pending byte total reaches ``budget``, which
    bounds both latency and the memory pinned by queued views.

    Segments must stay valid until flushed: callers hand in immutable
    ``bytes`` or views over buffers they will not recycle before the
    next loop tick.
    """

    __slots__ = (
        "_writer",
        "budget",
        "on_flush",
        "_segments",
        "_pending",
        "_scheduled",
        "_closed",
        "flushes",
        "bytes_flushed",
    )

    def __init__(
        self,
        writer: asyncio.StreamWriter,
        *,
        budget: int = COALESCE_BUDGET,
        on_flush: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        if budget <= 0:
            raise ValueError(f"coalesce budget must be positive, got {budget}")
        self._writer = writer
        self.budget = budget
        #: ``on_flush(nbytes, nsegments)`` fires once per non-empty flush.
        self.on_flush = on_flush
        self._segments: List[Segment] = []
        self._pending = 0
        self._scheduled = False
        self._closed = False
        self.flushes = 0
        self.bytes_flushed = 0

    @property
    def pending_bytes(self) -> int:
        return self._pending

    def add(self, *segments: Segment) -> None:
        """Queue segments for the next coalesced flush."""
        if self._closed:
            return
        for seg in segments:
            n = seg.nbytes if isinstance(seg, memoryview) else len(seg)
            if n:
                self._segments.append(seg)
                self._pending += n
        if self._pending >= self.budget:
            self.flush()
        elif self._segments and not self._scheduled:
            self._scheduled = True
            asyncio.get_running_loop().call_soon(self._flush_scheduled)

    def _flush_scheduled(self) -> None:
        self._scheduled = False
        if not self._closed:
            self.flush()

    def flush(self) -> int:
        """Send everything pending in one scatter-gather write; returns
        the byte count (0 for an empty flush, which sends nothing)."""
        if not self._segments:
            return 0
        segments, self._segments = self._segments, []
        nbytes, self._pending = self._pending, 0
        send_segments(self._writer, segments)
        self.flushes += 1
        self.bytes_flushed += nbytes
        if self.on_flush is not None:
            self.on_flush(nbytes, len(segments))
        return nbytes

    def close(self) -> None:
        """Drop pending segments and refuse further adds (teardown)."""
        self._closed = True
        self._segments.clear()
        self._pending = 0


# ---------------------------------------------------------------------------
# Zero-copy read side: BufferedProtocol relay ends (recv_into).
# ---------------------------------------------------------------------------


class _RelayEnd(asyncio.BufferedProtocol):
    """One direction of a protocol-swapped socket↔socket relay.

    The event loop reads straight into this end's reusable
    ``memoryview`` buffer (``recv_into``); ``buffer_updated`` forwards
    the filled view to the peer transport inside the read callback —
    directly to the peer socket when its transport is idle (no copy at
    all), otherwise one copy into the peer's write buffer.  asyncio's
    write-side flow control maps onto the peer's read side:
    ``pause_writing`` on this transport pauses the *peer's* reading.
    """

    __slots__ = (
        "transport",
        "fd",
        "peer",
        "moved",
        "direct_bytes",
        "_buf",
        "_view",
        "_on_chunk",
        "_done",
        "_read_eof",
    )

    def __init__(
        self,
        done: "asyncio.Future[int]",
        on_chunk: Optional[Callable[[int], None]] = None,
        buf_size: int = MAX_CHUNK,
    ) -> None:
        self.transport: Optional[asyncio.Transport] = None
        self.fd: Optional[int] = None
        self.peer: "_RelayEnd" = self  # re-pointed by the pairing code
        self.moved = 0
        #: Bytes that went peer-socket-direct without any userspace copy.
        self.direct_bytes = 0
        self._buf = bytearray(buf_size)
        self._view = memoryview(self._buf)
        self._on_chunk = on_chunk
        self._done = done
        self._read_eof = False

    def attach(self, transport: asyncio.Transport) -> None:
        self.transport = transport
        self.fd = transport_fd(transport)

    # -- reads ------------------------------------------------------------

    def get_buffer(self, sizehint: int) -> memoryview:
        return self._view

    def buffer_updated(self, nbytes: int) -> None:
        self.moved += nbytes
        if self._on_chunk is not None:
            self._on_chunk(nbytes)
        peer_t = self.peer.transport
        if peer_t is None or peer_t.is_closing():
            return
        view = self._view[:nbytes]
        sent = 0
        if self.peer.fd is not None and peer_t.get_write_buffer_size() == 0:
            try:
                sent = os.write(self.peer.fd, view)
            except (BlockingIOError, InterruptedError):
                sent = 0
            except OSError:
                sent = 0
            else:
                self.direct_bytes += sent
        if sent < nbytes:
            peer_t.write(bytes(view[sent:]))

    def eof_received(self) -> bool:
        self._read_eof = True
        peer_t = self.peer.transport
        if peer_t is not None and not peer_t.is_closing():
            try:
                peer_t.write_eof()
            except (OSError, RuntimeError):
                peer_t.close()
        self._maybe_finish()
        # Keep our transport open: the peer may still send toward us.
        return True

    def _maybe_finish(self) -> None:
        """Both directions saw EOF → close both transports (close()
        flushes queued writes first)."""
        if self._read_eof and self.peer._read_eof:
            for end in (self, self.peer):
                t = end.transport
                if t is not None and not t.is_closing():
                    t.close()

    # -- write-side flow control → peer's read side ------------------------

    def pause_writing(self) -> None:
        pt = self.peer.transport
        if pt is not None:
            with contextlib.suppress(RuntimeError):
                pt.pause_reading()

    def resume_writing(self) -> None:
        pt = self.peer.transport
        if pt is not None:
            with contextlib.suppress(RuntimeError):
                pt.resume_reading()

    # -- lifecycle ---------------------------------------------------------

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        self.transport = None
        self.fd = None
        pt = self.peer.transport
        if pt is not None and not pt.is_closing():
            pt.close()
        if not self._done.done():
            self._done.set_result(self.moved)


def _zero_copy_supported(transport: asyncio.BaseTransport) -> bool:
    """Protocol swapping needs a raw socket and a selector-style
    transport; anything else stays on the stream pump."""
    return (
        transport is not None
        and not transport.is_closing()
        and transport.get_extra_info("socket") is not None
        and hasattr(transport, "set_protocol")
        and hasattr(transport, "pause_reading")
    )


async def relay_sockets_zero_copy(
    a_reader: asyncio.StreamReader,
    a_writer: asyncio.StreamWriter,
    b_reader: asyncio.StreamReader,
    b_writer: asyncio.StreamWriter,
    *,
    on_chunk: Optional[Callable[[int], None]] = None,
) -> "Optional[tuple[int, int]]":
    """Bidirectional zero-copy relay between two established streams.

    Swaps both connections' protocols to :class:`_RelayEnd` buffered
    protocols, so from here on the event loop ``recv_into``\\ s a
    reusable buffer and forwards inside the read callback — no
    StreamReader, no per-chunk task wake-up, no copy when the
    destination socket keeps up.  Any bytes the stream layer had
    already buffered (payload pipelined behind the control handshake)
    are forwarded first.

    Returns ``(a_to_b_bytes, b_to_a_bytes)`` after both directions
    complete, or ``None`` without side effects when either transport
    cannot be swapped (the caller falls back to the stream pump).
    """
    ta = a_writer.transport
    tb = b_writer.transport
    if not (_zero_copy_supported(ta) and _zero_copy_supported(tb)):
        return None
    leftover_a = steal_reader_buffer(a_reader)
    leftover_b = steal_reader_buffer(b_reader)
    if leftover_a is None or leftover_b is None:
        return None

    loop = asyncio.get_running_loop()
    done_a: "asyncio.Future[int]" = loop.create_future()
    done_b: "asyncio.Future[int]" = loop.create_future()
    end_a = _RelayEnd(done_a, on_chunk)
    end_b = _RelayEnd(done_b, on_chunk)
    end_a.peer = end_b
    end_b.peer = end_a
    end_a.attach(ta)
    end_b.attach(tb)

    ta.set_protocol(end_a)
    tb.set_protocol(end_b)
    # The stream layer may have paused reading against its limit.
    for t in (ta, tb):
        with contextlib.suppress(RuntimeError):
            t.resume_reading()

    # Replay what the stream layer already consumed from each socket.
    for leftover, end, peer_t in (
        (leftover_a, end_a, tb),
        (leftover_b, end_b, ta),
    ):
        if leftover:
            end.moved += len(leftover)
            if on_chunk is not None:
                on_chunk(len(leftover))
            peer_t.write(leftover)
    for reader, end, peer_t in (
        (a_reader, end_a, tb),
        (b_reader, end_b, ta),
    ):
        if reader.at_eof():
            end._read_eof = True
            with contextlib.suppress(OSError, RuntimeError):
                peer_t.write_eof()
    end_a._maybe_finish()

    try:
        moved_a = await done_a
        moved_b = await done_b
    except asyncio.CancelledError:
        for t in (end_a.transport, end_b.transport):
            if t is not None:
                with contextlib.suppress(Exception):
                    t.abort()
        raise
    rec = _obs.RECORDER
    if rec is not None:
        rec.wall_instant(
            "pump", "zero_copy_done", track="pump",
            a_to_b=moved_a, b_to_a=moved_b,
            direct=end_a.direct_bytes + end_b.direct_bytes,
        )
    return moved_a, moved_b
