"""Live client library: Table 1 over real sockets.

:class:`AioProxyClient` mirrors :class:`repro.core.api.NexusProxyClient`
for asyncio streams: ``connect`` (``NXProxyConnect``) returns a
``(reader, writer)`` pair relayed through the outer server; ``bind``
(``NXProxyBind``) returns an :class:`AioProxiedListener` whose
``proxy_addr`` is the publicly reachable endpoint on the outer server
and whose ``accept`` (``NXProxyAccept``) yields chained-in peers.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro.core.aio.protocol import (
    ProtocolError,
    read_control,
    write_control,
)
from repro.core.aio.pump import STREAM_LIMIT, tune_stream
from repro.core.aio.streams import (
    DEFAULT_BLOCK,
    DEFAULT_STREAMS,
    DEFAULT_WINDOW,
    recv_striped,
    send_striped,
)
from repro.core.protocol import NXProxyError
from repro.obs import spans as _obs
from repro.obs import trace as _trace

__all__ = ["AioProxyClient", "AioProxiedListener"]

StreamPair = tuple[asyncio.StreamReader, asyncio.StreamWriter]


class AioProxiedListener:
    """The live 'file descriptor' returned by ``NXProxyBind``."""

    def __init__(
        self,
        local_server: asyncio.base_events.Server,
        control_writer: asyncio.StreamWriter,
        proxy_host: str,
        proxy_port: int,
        queue: "asyncio.Queue[StreamPair]",
    ) -> None:
        self._local_server = local_server
        self._control_writer = control_writer
        self._queue = queue
        #: Publicly announced address, on the outer server.
        self.proxy_addr = (proxy_host, proxy_port)
        self.closed = False

    @property
    def local_addr(self) -> tuple[str, int]:
        sock = self._local_server.sockets[0]
        return sock.getsockname()[:2]

    async def accept(self, timeout: Optional[float] = None) -> StreamPair:
        """(``NXProxyAccept``) next peer chained in by the inner server."""
        if timeout is None:
            return await self._queue.get()
        return await asyncio.wait_for(self._queue.get(), timeout)

    # Table 1 spelling.
    NXProxyAccept = accept

    async def close(self) -> None:
        """Release the bind: the outer server drops the public port
        when the control connection closes."""
        if self.closed:
            return
        self.closed = True
        self._control_writer.close()
        self._local_server.close()
        await self._local_server.wait_closed()

    async def recv_striped(self) -> "Tuple[bytes, Dict[str, Any]]":
        """Receive one GridFTP-style striped bulk transfer whose
        streams arrive as chained-in peers on this listener; returns
        ``(data, report)`` (see :func:`repro.core.aio.streams.recv_striped`)."""
        return await recv_striped(self.accept)


class AioProxyClient:
    """Per-process handle to a live Nexus Proxy deployment."""

    def __init__(
        self,
        outer_addr: Optional[tuple[str, int]] = None,
        inner_addr: Optional[tuple[str, int]] = None,
        local_host: str = "127.0.0.1",
        secret: Optional[str] = None,
    ) -> None:
        self.outer_addr = outer_addr
        self.inner_addr = inner_addr
        #: Shared secret attached to control requests, when required.
        self.secret = secret
        #: Address this process's private listeners bind on (must be
        #: reachable from the inner server).
        self.local_host = local_host

    @property
    def enabled(self) -> bool:
        return self.outer_addr is not None

    # -- active open (Fig. 3) ------------------------------------------------

    async def connect(
        self, host: str, port: int,
        tctx: "Optional[_trace.TraceContext]" = None,
    ) -> StreamPair:
        """(``NXProxyConnect``) open a relayed — or, when no proxy is
        configured, direct — connection to ``host:port``.

        With causal tracing on, the connect is an origin: a fresh
        context is minted (or ``tctx``/the ambient task context is
        continued) and rides the control line, tagging every relay-side
        span of this chain.
        """
        if tctx is None and _trace.ENABLED:
            tctx = _trace.current()
            tctx = _trace.child(tctx) if tctx is not None else _trace.mint("connect")
        if not self.enabled:
            reader, writer = await asyncio.open_connection(
                host, port, limit=STREAM_LIMIT
            )
            tune_stream(writer)
            return reader, writer
        assert self.outer_addr is not None
        reader, writer = await asyncio.open_connection(
            *self.outer_addr, limit=STREAM_LIMIT
        )
        tune_stream(writer)
        request = {"op": "connect", "host": host, "port": port}
        if self.secret is not None:
            request["secret"] = self.secret
        if tctx is not None:
            request["tctx"] = tctx.to_wire()
        write_control(writer, request)
        await writer.drain()
        try:
            reply = await read_control(reader)
        except ProtocolError as exc:
            writer.close()
            raise NXProxyError(f"NXProxyConnect({host}:{port}): {exc}") from exc
        if not reply.get("ok"):
            writer.close()
            raise NXProxyError(
                f"NXProxyConnect({host}:{port}): {reply.get('error', 'refused')}"
            )
        if tctx is not None:
            rec = _obs.RECORDER
            if rec is not None:
                # Anchor the origin span so the relay-side hops'
                # parent links resolve in an assembled trace.
                rec.wall_instant("nxproxy", "connect", track="client",
                                 dest=f"{host}:{port}",
                                 **_trace.span_args(tctx))
        return reader, writer

    # Table 1 spelling.
    NXProxyConnect = connect

    async def send_striped(
        self,
        host: str,
        port: int,
        data: "bytes | bytearray | memoryview",
        *,
        streams: int = DEFAULT_STREAMS,
        block_bytes: int = DEFAULT_BLOCK,
        window_blocks: int = DEFAULT_WINDOW,
        reconnect: bool = True,
    ) -> "Dict[str, Any]":
        """Send ``data`` to ``host:port`` as a GridFTP-style striped
        bulk transfer over ``streams`` parallel relayed connections.

        Each stream is a full :meth:`connect` (its own relay chain);
        the receiving side must be draining the same transfer — e.g.
        :meth:`AioProxiedListener.recv_striped` behind a :meth:`bind`.
        Returns the sender report (see
        :func:`repro.core.aio.streams.send_striped`).
        """

        async def dial() -> StreamPair:
            return await self.connect(host, port)

        return await send_striped(
            dial, data,
            streams=streams, block_bytes=block_bytes,
            window_blocks=window_blocks, reconnect=reconnect,
        )

    # -- passive open (Fig. 4) --------------------------------------------------

    async def bind(
        self, tctx: "Optional[_trace.TraceContext]" = None
    ) -> AioProxiedListener:
        """(``NXProxyBind``) publish a listening endpoint on the outer
        server; peers that connect there are chained back here.

        With causal tracing on, the bind mints (or continues) a
        context; every chain the outer server later relays to this
        listener becomes a child of it.
        """
        if tctx is None and _trace.ENABLED:
            tctx = _trace.current()
            tctx = _trace.child(tctx) if tctx is not None else _trace.mint("bind")
        if not self.enabled:
            raise NXProxyError("NXProxyBind: no outer server configured")
        if self.inner_addr is None:
            raise NXProxyError(
                "NXProxyBind needs an inner server address "
                "(NEXUS_PROXY_INNER_SERVER undefined)"
            )
        queue: asyncio.Queue[StreamPair] = asyncio.Queue()

        async def on_chain(r: asyncio.StreamReader, w: asyncio.StreamWriter) -> None:
            tune_stream(w)
            await queue.put((r, w))

        local_server = await asyncio.start_server(
            on_chain, self.local_host, 0, limit=STREAM_LIMIT
        )
        local_port = local_server.sockets[0].getsockname()[1]

        assert self.outer_addr is not None
        reader, writer = await asyncio.open_connection(
            *self.outer_addr, limit=STREAM_LIMIT
        )
        tune_stream(writer)
        request = {
            "op": "bind",
            "client_host": self.local_host,
            "client_port": local_port,
            "inner_host": self.inner_addr[0],
            "inner_port": self.inner_addr[1],
        }
        if self.secret is not None:
            request["secret"] = self.secret
        if tctx is not None:
            request["tctx"] = tctx.to_wire()
        write_control(writer, request)
        await writer.drain()
        try:
            reply = await read_control(reader)
        except ProtocolError as exc:
            writer.close()
            local_server.close()
            raise NXProxyError(f"NXProxyBind: {exc}") from exc
        if not reply.get("ok"):
            writer.close()
            local_server.close()
            raise NXProxyError(f"NXProxyBind: {reply.get('error', 'refused')}")
        if tctx is not None:
            rec = _obs.RECORDER
            if rec is not None:
                rec.wall_instant("nxproxy", "bind", track="client",
                                 local=f"{self.local_host}:{local_port}",
                                 **_trace.span_args(tctx))
        return AioProxiedListener(
            local_server, writer, reply["proxy_host"], reply["proxy_port"], queue
        )

    # Table 1 spelling.
    NXProxyBind = bind
