"""Fleet control plane: admin endpoint + the ``repro-fleet`` CLI.

The :class:`~repro.core.aio.fleet.FleetManager` is an in-process
object; this module puts it on the wire so operators (and CI) can run
and steer a fleet from a shell::

    # Terminal 1 — run a 4-worker fleet, admin endpoint on 7900:
    repro-fleet serve --workers 4 --port 7000 --admin-port 7900

    # Terminal 2 — inspect and drain:
    repro-fleet status --admin-port 7900
    repro-fleet drain w2 --admin-port 7900 --grace 5
    repro-fleet stop --admin-port 7900

The admin server is the same dependency-free asyncio HTTP shape as the
telemetry endpoint (PR 4), with three routes:

* ``GET /fleet`` — the fleet snapshot (shared live/sim key schema)
  plus per-worker wiring (pid, private control port, telemetry port).
* ``POST /drain?worker=<id>[&grace_s=<s>]`` — start a graceful drain;
  returns immediately, the drain completes in the background
  (``GET /fleet`` shows ``draining`` → ``gone``).
* ``POST /stop`` — stop the whole fleet and exit ``serve``.

``GET`` is accepted on the mutating routes too, for curl-ability; the
CLI uses ``POST``.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import logging
import sys
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro.core.aio.fleet import FleetManager, FleetSpec

__all__ = ["FleetAdminServer", "main"]

log = logging.getLogger("repro.fleet")

_MAX_REQUEST = 16 * 1024


class FleetAdminServer:
    """Minimal asyncio HTTP endpoint steering one fleet manager."""

    def __init__(
        self,
        manager: FleetManager,
        host: str = "127.0.0.1",
        port: int = 0,
        on_stop: "Optional[asyncio.Event]" = None,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        #: Set when a ``/stop`` request lands — ``serve`` exits on it.
        self.on_stop = on_stop
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def bound_port(self) -> int:
        if self._server is None:
            raise RuntimeError("admin server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "FleetAdminServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self.bound_port
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None

    # -- request handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            writer.close()
            return
        try:
            parts = request.decode("latin-1").split()
            method, target = parts[0], parts[1]
        except (UnicodeDecodeError, IndexError, ValueError):
            writer.close()
            return
        # Drain (and ignore) the header block.
        drained = 0
        while drained < _MAX_REQUEST:
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            except (asyncio.TimeoutError, ConnectionError, OSError):
                break
            drained += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
        status, body = await self._route(method, target)
        payload = json.dumps(body, indent=2).encode()
        head = (
            f"HTTP/1.0 {status} {'OK' if status == 200 else 'ERR'}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        with contextlib.suppress(ConnectionError, OSError):
            writer.write(head + payload)
            await writer.drain()
        writer.close()

    async def _route(
        self, method: str, target: str
    ) -> "tuple[int, dict[str, Any]]":
        url = urlsplit(target)
        query = parse_qs(url.query)
        path = url.path.rstrip("/") or "/"
        if method not in ("GET", "POST"):
            return 405, {"ok": False, "error": f"method {method} not allowed"}
        if path == "/fleet":
            return 200, {
                "ok": True,
                "fleet": self.manager.snapshot(),
                "endpoint": {
                    "host": self.manager.host,
                    "port": self.manager.port,
                },
                "wiring": {
                    wid: {
                        "pid": h.pid,
                        "control_port": h.control_port,
                        "telemetry_port": h.telemetry_port,
                    }
                    for wid, h in self.manager.handles.items()
                },
            }
        if path == "/drain":
            worker = (query.get("worker") or [None])[0]
            if worker is None:
                return 400, {"ok": False, "error": "missing ?worker=<id>"}
            if worker not in self.manager.handles:
                return 404, {"ok": False, "error": f"no such worker {worker!r}"}
            grace_raw = (query.get("grace_s") or [None])[0]
            try:
                grace = float(grace_raw) if grace_raw is not None else None
            except ValueError:
                return 400, {"ok": False, "error": f"bad grace_s {grace_raw!r}"}
            asyncio.get_running_loop().create_task(
                self.manager.drain(worker, grace_s=grace)
            )
            return 200, {"ok": True, "draining": worker}
        if path == "/stop":
            if self.on_stop is not None:
                self.on_stop.set()
            return 200, {"ok": True, "stopping": True}
        return 404, {"ok": False, "error": f"no route {path!r}"}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


async def _serve(args: argparse.Namespace) -> int:
    spec = FleetSpec(
        workers=args.workers,
        host=args.host,
        port=args.port,
        mode=args.mode,
        pump_mode=args.pump,
        secret=args.secret,
        max_chains_per_client=args.quota,
        edge_rate_bytes_per_s=(
            args.edge_rate_mb * 1e6 if args.edge_rate_mb is not None else None
        ),
        heartbeat_s=args.heartbeat,
        drain_grace_s=args.drain_grace,
        telemetry=args.telemetry,
        sample_interval_s=args.sample_interval,
        trace_dir=args.trace_dir,
        trace_site=args.trace_site,
    )
    manager = FleetManager(spec)
    await manager.start()
    stop_event = asyncio.Event()
    admin = FleetAdminServer(
        manager, host=args.admin_host, port=args.admin_port,
        on_stop=stop_event,
    )
    await admin.start()

    # Aggregated observability plane (--agg-port): a FleetAggregator
    # pointed at our *own* admin port — the same discovery path a
    # remote aggregator would use — serving merged Prometheus/JSON
    # plus /alerts from an SLO engine clocked by the scrape rounds.
    aggregator = None
    agg_endpoint = None
    if args.agg_port is not None:
        from repro.obs.aggregate import FleetAggregator
        from repro.obs.slo import SLOEngine, load_slo_spec

        rules = load_slo_spec(args.slo) if args.slo else None
        engine = SLOEngine(rules)
        aggregator = FleetAggregator(
            args.admin_host, admin.bound_port,
            interval_s=args.agg_interval,
            on_refresh=lambda _view, now: engine.evaluate_sampler(
                aggregator.sampler, now
            ),
        )
        agg_endpoint = aggregator.make_endpoint(
            host=args.admin_host, port=args.agg_port,
            extra_routes={"/alerts": engine.alerts_route},
            window_s=args.slo_window,
        )
        await agg_endpoint.start()
        aggregator.start()
        log.info(
            "aggregated telemetry http://%s:%d/metrics (/metrics.json, "
            "/alerts; %d SLO rules)",
            args.admin_host, agg_endpoint.bound_port, len(engine.rules),
        )

    log.info(
        "fleet endpoint %s:%d (%s, %d workers); admin http://%s:%d/fleet",
        manager.host, manager.port, spec.mode, spec.workers,
        args.admin_host, admin.bound_port,
    )
    try:
        await stop_event.wait()
    finally:
        if aggregator is not None:
            await aggregator.stop()
        if agg_endpoint is not None:
            await agg_endpoint.stop()
        await admin.stop()
        await manager.stop()
    return 0


def _admin_request(
    args: argparse.Namespace, method: str, target: str
) -> "dict[str, Any]":
    import http.client

    conn = http.client.HTTPConnection(
        args.admin_host, args.admin_port, timeout=10
    )
    try:
        conn.request(method, target)
        resp = conn.getresponse()
        raw = resp.read()
    finally:
        conn.close()
    try:
        return json.loads(raw)
    except ValueError:
        return {"ok": False, "error": f"unparseable admin reply: {raw[:200]!r}"}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Sharded Nexus-proxy relay fleet: N outer workers "
        "behind one logical endpoint, with least-loaded placement, "
        "per-client quotas and graceful drain.",
    )
    parser.add_argument(
        "--admin-host", default="127.0.0.1",
        help="admin endpoint address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--admin-port", type=int, default=7900,
        help="admin endpoint port (default 7900)",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    sub = parser.add_subparsers(dest="cmd", required=True)

    serve = sub.add_parser("serve", help="run a fleet until /stop or ^C")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7000,
        help="logical fleet endpoint port (0 = pick one)",
    )
    serve.add_argument(
        "--mode", choices=("handoff", "reuseport", "auto"), default="handoff",
        help="handoff = front door with quotas + least-loaded placement "
        "(default); reuseport = kernel spreading, no edge policy",
    )
    serve.add_argument("--pump", choices=("adaptive", "fixed"),
                       default="adaptive")
    serve.add_argument("--secret", default=None)
    serve.add_argument(
        "--quota", type=int, default=None, metavar="N",
        help="max concurrent chains per client address (handoff mode)",
    )
    serve.add_argument(
        "--edge-rate-mb", type=float, default=None, metavar="MB_PER_S",
        help="fleet-wide edge byte-rate cap, split across workers",
    )
    serve.add_argument("--heartbeat", type=float, default=0.25)
    serve.add_argument("--drain-grace", type=float, default=2.0)
    serve.add_argument(
        "--telemetry", action="store_true",
        help="per-worker /metrics endpoints (ports in GET /fleet wiring)",
    )
    serve.add_argument(
        "--sample-interval", type=float, default=1.0, metavar="SECONDS",
        help="per-worker time-series sampling period (telemetry mode; "
        "0 disables; default 1.0)",
    )
    serve.add_argument(
        "--agg-port", type=int, default=None, metavar="PORT",
        help="serve an aggregated fleet endpoint (merged per-worker "
        "Prometheus/JSON + /alerts) on this port (0 = pick one); "
        "repro-obs top/alerts point here",
    )
    serve.add_argument(
        "--agg-interval", type=float, default=0.5, metavar="SECONDS",
        help="aggregator scrape period (default 0.5)",
    )
    serve.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="SLO spec file (JSON always; YAML when PyYAML is "
        "installed) — default: the built-in fleet rules",
    )
    serve.add_argument(
        "--slo-window", type=float, default=10.0, metavar="SECONDS",
        help="sliding window SLO rules are evaluated over (default 10)",
    )
    serve.add_argument(
        "--trace-dir", default=None,
        help="write per-worker trace artifacts here on shutdown "
        "(worker-<id>.trace.json; feed them to repro-obs assemble)",
    )
    serve.add_argument("--trace-site", default="fleet")

    status = sub.add_parser("status", help="print GET /fleet")
    status.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-poll every SECONDS until interrupted",
    )

    drain = sub.add_parser("drain", help="gracefully retire one worker")
    drain.add_argument("worker", help="worker id, e.g. w0")
    drain.add_argument("--grace", type=float, default=None,
                       help="seconds busy chains get before abort")

    sub.add_parser("stop", help="stop the fleet")

    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )

    if args.cmd == "serve":
        with contextlib.suppress(KeyboardInterrupt):
            return asyncio.run(_serve(args))
        return 0
    if args.cmd == "status":
        import time

        while True:
            body = _admin_request(args, "GET", "/fleet")
            json.dump(body, sys.stdout, indent=2)
            sys.stdout.write("\n")
            if args.watch is None:
                break
            try:
                time.sleep(args.watch)
            except KeyboardInterrupt:
                break
        return 0 if body.get("ok") else 1
    if args.cmd == "drain":
        target = f"/drain?worker={args.worker}"
        if args.grace is not None:
            target += f"&grace_s={args.grace}"
        body = _admin_request(args, "POST", target)
        json.dump(body, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0 if body.get("ok") else 1
    if args.cmd == "stop":
        body = _admin_request(args, "POST", "/stop")
        json.dump(body, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0 if body.get("ok") else 1
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
