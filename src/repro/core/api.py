"""Client library: the Table 1 functions.

=====================  ======================================================
Function               Description (verbatim from the paper's Table 1)
=====================  ======================================================
``NXProxyConnect()``   Sends a connect request to the outer server and
                       returns a file descriptor on which the client can
                       communicate with the destination process.
``NXProxyBind()``      Sends a bind request to the outer server and returns
                       a file descriptor on which the client can listen for
                       requests.
``NXProxyAccept()``    Tries to accept a connection request.
=====================  ======================================================

:class:`NexusProxyClient` is the per-host handle, configured — like the
real library — with the outer/inner server addresses (the paper's
``NEXUS_PROXY_OUTER_SERVER`` / ``NEXUS_PROXY_INNER_SERVER`` environment
variables).  When no servers are configured the same calls fall back to
direct sockets, mirroring "Otherwise, the original communication is
done" (§3 end).

All returned connections speak chunk frames
(:class:`~repro.core.frames.FramedConnection`), so proxied and direct
endpoints interoperate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.config import DEFAULT_RELAY_CONFIG, RelayConfig
from repro.core.frames import (
    DEFAULT_STRIPE_BLOCK,
    FramedConnection,
    recv_striped as _recv_striped,
    send_striped as _send_striped,
)
from repro.obs import spans as _obs
from repro.obs import trace as _trace
from repro.core.protocol import (
    CONTROL_MSG_BYTES,
    BindReply,
    BindRequest,
    ConnectRequest,
    NXProxyError,
    Reply,
)
from repro.simnet.host import Host
from repro.simnet.kernel import Event
from repro.simnet.socket import Address, Connection, ConnectionReset, ListenSocket, SocketError

__all__ = ["NexusProxyClient", "ProxiedListener", "DirectListener", "NXProxyError"]


def _as_addr(addr: "Address | tuple[str, int]") -> Address:
    return addr if isinstance(addr, Address) else Address(*addr)


class ProxiedListener:
    """The 'file descriptor' returned by ``NXProxyBind``.

    ``proxy_addr`` is the *publicly announced* address (on the outer
    server) that remote peers connect to; accepting happens on the
    client's private socket, to which the inner server chains incoming
    peers (Fig. 4 step 5).
    """

    def __init__(
        self,
        chunk_bytes: int,
        local_sock: ListenSocket,
        control: Connection,
        proxy_addr: Address,
    ) -> None:
        self.chunk_bytes = chunk_bytes
        self._local_sock = local_sock
        self._control = control
        #: Address remote processes should connect to.
        self.proxy_addr = proxy_addr
        self.closed = False

    @property
    def local_addr(self) -> Address:
        return self._local_sock.addr

    def accept(self, timeout: Optional[float] = None) -> Iterator[Event]:
        """Generator (``NXProxyAccept``): yields the next chained-in
        peer as a :class:`FramedConnection`."""
        conn = yield self._local_sock.accept(timeout=timeout)
        return FramedConnection(conn, self.chunk_bytes)

    # Table 1 spelling.
    NXProxyAccept = accept

    def recv_striped(self, timeout: Optional[float] = None) -> Iterator[Event]:
        """Generator: receive one GridFTP-style striped bulk transfer
        whose parallel streams arrive as chained-in peers on this
        listener; returns the sink report (see
        :func:`repro.core.frames.recv_striped`)."""
        report = yield from _recv_striped(self.accept, timeout=timeout)
        return report

    def close(self) -> None:
        """Release the bind: closes the private socket and the control
        connection, which makes the outer server drop the public port."""
        if self.closed:
            return
        self.closed = True
        self._local_sock.close()
        self._control.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ProxiedListener public={self.proxy_addr} private={self.local_addr}>"


class NexusProxyClient:
    """Per-host handle to the Nexus Proxy system.

    ``outer_addr``/``inner_addr`` play the role of the environment
    variables; ``inner_addr`` is only needed for passive opens.
    """

    def __init__(
        self,
        host: Host,
        outer_addr: "Address | tuple[str, int] | None" = None,
        inner_addr: "Address | tuple[str, int] | None" = None,
        config: RelayConfig = DEFAULT_RELAY_CONFIG,
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.outer_addr = _as_addr(outer_addr) if outer_addr is not None else None
        self.inner_addr = _as_addr(inner_addr) if inner_addr is not None else None
        self.config = config

    @property
    def enabled(self) -> bool:
        """Whether proxying is configured (the env-vars-defined check)."""
        return self.outer_addr is not None

    # -- active open --------------------------------------------------------

    def connect(
        self,
        dest: "Address | tuple[str, int]",
        timeout: Optional[float] = None,
        tctx: "Optional[_trace.TraceContext]" = None,
    ) -> Iterator[Event]:
        """Generator (``NXProxyConnect``): connect to ``dest`` through
        the outer server (Fig. 3), or directly when not configured.

        ``tctx`` joins this open to an existing causal trace; when
        omitted and tracing is on, the open is itself an origin and
        mints a fresh trace.
        """
        dest = _as_addr(dest)
        if tctx is None and _trace.ENABLED:
            tctx = _trace.mint("connect")
        if not self.enabled:
            conn = yield from self.host.connect(dest, timeout=timeout)
            return FramedConnection(conn, self.config.chunk_bytes)
        assert self.outer_addr is not None
        if dest.host == self.outer_addr.host:
            # The destination is a public port on the outer server
            # itself (a peer's NXProxyBind address).  Dialing it is an
            # ordinary *outbound* connection, so relaying through the
            # outer server a second time would only add a pointless
            # extra traversal — connect straight to the public port.
            conn = yield from self.host.connect(dest, timeout=timeout)
            return FramedConnection(conn, self.config.chunk_bytes)
        t0 = self.sim.now
        control = yield from self.host.connect(self.outer_addr, timeout=timeout)
        yield control.send(
            ConnectRequest(
                dest.host, dest.port, secret=self.config.secret,
                tctx=tctx.to_wire() if tctx is not None else None,
            ),
            nbytes=CONTROL_MSG_BYTES,
        )
        try:
            reply_msg = yield control.recv()
        except ConnectionReset:
            raise NXProxyError(f"outer server dropped connect request to {dest}")
        reply: Reply = reply_msg.payload
        reply.raise_for_error(f"NXProxyConnect({dest})")
        if tctx is not None:
            rec = _obs.RECORDER
            if rec is not None:
                rec.sim_span(
                    "nxproxy", "connect", t0, self.sim.now,
                    track=self.host.name, dest=str(dest),
                    **_trace.span_args(tctx),
                )
        return FramedConnection(control, self.config.chunk_bytes)

    # Table 1 spelling.
    NXProxyConnect = connect

    def send_striped(
        self,
        dest: "Address | tuple[str, int]",
        nbytes: int,
        streams: int = 4,
        block_bytes: int = DEFAULT_STRIPE_BLOCK,
        timeout: Optional[float] = None,
    ) -> Iterator[Event]:
        """Generator: send one ``nbytes`` bulk transfer to ``dest`` as
        ``streams`` parallel relayed connections (GridFTP-style
        striping; mirror of the live
        :meth:`repro.core.aio.api.AioProxyClient.send_striped`).

        Each stream is a full :meth:`connect` — its own relay chain —
        and the receiving side must be draining the same transfer
        (:meth:`ProxiedListener.recv_striped`).  Returns the sender
        report.
        """
        if streams < 1:
            raise NXProxyError(f"streams must be >= 1, got {streams}")
        conns = []
        try:
            for _ in range(streams):
                framed = yield from self.connect(dest, timeout=timeout)
                conns.append(framed)
            report = yield from _send_striped(
                conns, nbytes, block_bytes=block_bytes
            )
        finally:
            for framed in conns:
                framed.close()
        return report

    # -- passive open ----------------------------------------------------------

    def bind(
        self,
        timeout: Optional[float] = None,
        tctx: "Optional[_trace.TraceContext]" = None,
    ) -> Iterator[Event]:
        """Generator (``NXProxyBind``): returns a
        :class:`ProxiedListener` whose ``proxy_addr`` peers connect to.

        Without a configured proxy this degenerates to a plain
        listener-like object whose public and private addresses
        coincide.
        """
        if tctx is None and _trace.ENABLED:
            tctx = _trace.mint("bind")
        t0 = self.sim.now
        local_sock = self.host.listen()
        if not self.enabled:
            return DirectListener(local_sock, self.config.chunk_bytes)
        assert self.outer_addr is not None
        if self.inner_addr is None:
            local_sock.close()
            raise NXProxyError(
                "NXProxyBind needs an inner server address "
                "(NEXUS_PROXY_INNER_SERVER undefined)"
            )
        control = yield from self.host.connect(self.outer_addr, timeout=timeout)
        yield control.send(
            BindRequest(
                client_host=self.host.name,
                client_port=local_sock.port,
                inner_host=self.inner_addr.host,
                inner_port=self.inner_addr.port,
                secret=self.config.secret,
                tctx=tctx.to_wire() if tctx is not None else None,
            ),
            nbytes=CONTROL_MSG_BYTES,
        )
        try:
            reply_msg = yield control.recv()
        except ConnectionReset:
            local_sock.close()
            raise NXProxyError("outer server dropped bind request")
        reply: BindReply = reply_msg.payload
        if not reply.ok:
            local_sock.close()
            control.close()
        reply.raise_for_error("NXProxyBind")
        if tctx is not None:
            rec = _obs.RECORDER
            if rec is not None:
                # Anchor the bind origin so the relay's hop links
                # resolve when the trace is assembled.
                rec.sim_instant(
                    "nxproxy", "bind", t0, track=self.host.name,
                    proxy=f"{reply.proxy_host}:{reply.proxy_port}",
                    **_trace.span_args(tctx),
                )
        return ProxiedListener(
            self.config.chunk_bytes,
            local_sock,
            control,
            Address(reply.proxy_host, reply.proxy_port),
        )

    # Table 1 spelling.
    NXProxyBind = bind


class DirectListener(ProxiedListener):
    """Listener with no proxy behind it: the announced address is the
    real one.  Used for unconfigured clients and for the Globus 1.1
    port-range mode (see :mod:`repro.nexus.tcpproto`)."""

    def __init__(self, local_sock: ListenSocket, chunk_bytes: int) -> None:
        self.chunk_bytes = chunk_bytes
        self._local_sock = local_sock
        self._control = None  # type: ignore[assignment]
        self.proxy_addr = local_sock.addr
        self.closed = False

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._local_sock.close()
