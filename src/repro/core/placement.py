"""Plane-neutral fleet placement, admission and rate-limit policy.

The relay fleet (ROADMAP item 1) shards the paper's single outer
daemon into N workers behind one logical endpoint.  *Which worker gets
the next chain* is pure policy — a function of worker health and load,
not of sockets — so it lives here, importable by both planes:

* the **live** plane (:mod:`repro.core.aio.fleet`) drives it with wall
  clocks and heartbeat messages from real worker processes;
* the **sim** plane (:mod:`repro.core.fleet`) drives the *same
  objects* with the DES clock and :class:`~repro.core.outer.RelayStats`
  snapshots, so a simulated scenario models exactly the placement the
  deployment would make.

Policy pieces:

* :class:`ConsistentHashRing` — stable chain→worker mapping used when
  no load signal is available (cold fleet, stale heartbeats, ties).
  Hashes are :func:`hashlib.blake2b` digests, so placement is
  deterministic across processes and runs (``hash()`` is salted).
* :class:`WorkerView` — one worker as the placer sees it: health
  state plus an EWMA byte-rate derived from successive
  ``bytes_relayed`` snapshots (the live plane feeds heartbeats, the
  sim plane feeds :meth:`RelayStats.snapshot` values).
* :class:`LeastLoadedPlacer` — the placement decision: least live
  byte-rate among healthy workers (chains placed since the last
  heartbeat charged an estimated rate, so dial bursts spread instead
  of herding), tie-broken by chain count, with consistent hashing as
  the declared fallback when rates are unknown, stale, or
  indistinguishable.
* :class:`AdmissionControl` — per-client concurrent-chain quotas at
  the edge.
* :class:`TokenBucketCore` — a clock-agnostic token bucket; the live
  plane wraps it in :class:`TokenBucket` (``loop.time`` + sleeps), the
  sim plane advances it with ``sim.now``.

:func:`fleet_snapshot` builds the fleet-wide counter snapshot both
planes expose; sharing the builder keeps the live/sim key schemas
identical by construction (mirroring the 13-key relay snapshot parity
from PR 3).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ConsistentHashRing",
    "WorkerView",
    "LeastLoadedPlacer",
    "AdmissionControl",
    "TokenBucketCore",
    "TokenBucket",
    "PlacementStats",
    "fleet_snapshot",
    "WORKER_UP",
    "WORKER_DRAINING",
    "WORKER_GONE",
]

WORKER_UP = "up"
WORKER_DRAINING = "draining"
WORKER_GONE = "gone"

#: Two byte-rates closer than this (bytes/s) are a tie — the load
#: signal carries no information at that resolution and the placer
#: falls back to the hash ring for deterministic spread.
RATE_TIE_EPSILON = 4096.0

#: A worker whose last heartbeat is older than this (seconds, in
#: whichever clock domain drives the placer) has an unknown rate.
DEFAULT_STALE_S = 5.0

#: EWMA smoothing for byte-rates: weight of the newest interval.
RATE_ALPHA = 0.5


def _stable_hash(key: str) -> int:
    """Process-stable 64-bit hash (``hash()`` is salted per process)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode(), digest_size=8).digest(), "big"
    )


class ConsistentHashRing:
    """Consistent hashing over worker ids with virtual nodes.

    ``pick(key)`` walks clockwise from the key's point; removing a
    worker only remaps the chains that hashed to it (the property that
    makes drain cheap: surviving placements are untouched).
    """

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}

    def __contains__(self, worker_id: str) -> bool:
        return any(o == worker_id for o in self._owners.values())

    def add(self, worker_id: str) -> None:
        for v in range(self.vnodes):
            point = _stable_hash(f"{worker_id}#{v}")
            if point in self._owners:  # pragma: no cover - 64-bit collision
                continue
            bisect.insort(self._points, point)
            self._owners[point] = worker_id

    def remove(self, worker_id: str) -> None:
        dead = [p for p, o in self._owners.items() if o == worker_id]
        for point in dead:
            del self._owners[point]
            idx = bisect.bisect_left(self._points, point)
            if idx < len(self._points) and self._points[idx] == point:
                del self._points[idx]

    def pick(self, key: str, eligible: "Optional[set[str]]" = None) -> Optional[str]:
        """The worker owning ``key``'s arc, restricted to ``eligible``
        ids when given; ``None`` on an empty ring."""
        if not self._points:
            return None
        start = bisect.bisect(self._points, _stable_hash(key))
        n = len(self._points)
        for step in range(n):
            owner = self._owners[self._points[(start + step) % n]]
            if eligible is None or owner in eligible:
                return owner
        return None


class WorkerView:
    """One fleet worker as the placement policy sees it."""

    __slots__ = (
        "worker_id", "state", "active_chains", "bytes_relayed",
        "byte_rate", "heartbeats", "last_heartbeat", "pending_chains",
        "extra",
    )

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.state = WORKER_UP
        self.active_chains = 0
        self.bytes_relayed = 0
        #: EWMA of bytes/second over heartbeat intervals; meaningful
        #: only once ``heartbeats >= 2``.
        self.byte_rate = 0.0
        self.heartbeats = 0
        self.last_heartbeat: Optional[float] = None
        #: Chains placed here since the last load sample.  Heartbeats
        #: lag placement, so without this every dial in a burst would
        #: herd onto the momentarily-idlest worker; the placer charges
        #: pending chains an estimated rate until the next sample
        #: reflects them.
        self.pending_chains = 0
        #: Plane-specific extras (telemetry port, pid, ...) carried
        #: into the snapshot untouched.
        self.extra: Dict[str, Any] = {}

    def observe(
        self, now: float, bytes_relayed: int, active_chains: int
    ) -> None:
        """Fold one heartbeat/stats sample into the view."""
        if self.last_heartbeat is not None:
            dt = now - self.last_heartbeat
            if dt > 0:
                inst = max(0, bytes_relayed - self.bytes_relayed) / dt
                self.byte_rate += RATE_ALPHA * (inst - self.byte_rate)
        self.bytes_relayed = bytes_relayed
        self.active_chains = active_chains
        self.last_heartbeat = now
        self.heartbeats += 1
        self.pending_chains = 0

    def rate_known(self, now: float, stale_s: float = DEFAULT_STALE_S) -> bool:
        return (
            self.heartbeats >= 2
            and self.last_heartbeat is not None
            and now - self.last_heartbeat <= stale_s
        )

    def snapshot(self) -> "dict[str, Any]":
        return {
            "state": self.state,
            "active_chains": self.active_chains,
            "bytes_relayed": self.bytes_relayed,
            "byte_rate": round(self.byte_rate, 1),
            "heartbeats": self.heartbeats,
        }


class PlacementStats:
    """Counters of every placement decision and edge-admission verdict."""

    __slots__ = (
        "placed_chains", "placed_least_loaded", "placed_hash_ring",
        "rejected_quota", "rejected_no_worker", "edge_throttle_waits",
        "handoffs", "drains_started", "drains_completed",
    )

    def __init__(self) -> None:
        self.placed_chains = 0
        self.placed_least_loaded = 0
        self.placed_hash_ring = 0
        self.rejected_quota = 0
        self.rejected_no_worker = 0
        #: Pump waits imposed by the edge token bucket (summed over
        #: workers in the live plane).
        self.edge_throttle_waits = 0
        self.handoffs = 0
        self.drains_started = 0
        self.drains_completed = 0


class LeastLoadedPlacer:
    """Least-loaded chain placement with a consistent-hash fallback.

    The decision procedure, in order:

    1. eligible = workers in state ``up`` (draining/gone never get new
       chains);
    2. if every eligible worker has a *known* byte-rate (two or more
       heartbeats, the newest fresher than ``stale_s``) and the
       *scores* are distinguishable (spread above
       :data:`RATE_TIE_EPSILON`), pick the lowest score, tie-breaking
       by fewest chains (active + pending) then worker id —
       **least-loaded**.  A worker's score is its EWMA byte-rate plus
       an estimated rate per chain it was handed since its last
       heartbeat — without that surcharge, a burst of dials between
       heartbeats would all herd onto the momentarily-idlest worker;
    3. otherwise pick by consistent hash of the chain id over the
       eligible workers — **hash-ring** (cold fleet, stale or tied
       load signal).
    """

    def __init__(
        self, vnodes: int = 64, stale_s: float = DEFAULT_STALE_S
    ) -> None:
        self.ring = ConsistentHashRing(vnodes)
        self.stale_s = stale_s
        self.stats = PlacementStats()

    def add_worker(self, view: WorkerView) -> None:
        self.ring.add(view.worker_id)

    def remove_worker(self, worker_id: str) -> None:
        self.ring.remove(worker_id)

    def place(
        self,
        chain_key: str,
        workers: "Dict[str, WorkerView]",
        now: float,
    ) -> Tuple[Optional[str], str]:
        """Pick a worker for ``chain_key``; returns ``(worker_id,
        method)`` with method in ``{"least_loaded", "hash_ring",
        "none"}`` (``worker_id`` is None when no worker is eligible).
        """
        eligible = {
            wid: view for wid, view in workers.items()
            if view.state == WORKER_UP
        }
        if not eligible:
            self.stats.rejected_no_worker += 1
            return None, "none"
        rates_known = all(
            view.rate_known(now, self.stale_s) for view in eligible.values()
        )
        if rates_known and len(eligible) > 1:
            # A chain placed since the last heartbeat contributes no
            # byte-rate yet; charge it the fleet's mean rate per
            # active chain so rapid-fire dials spread instead of all
            # chasing the same stale minimum.
            chain_rate = sum(v.byte_rate for v in eligible.values()) / max(
                1, sum(v.active_chains for v in eligible.values())
            )

            def score(v: WorkerView) -> float:
                return v.byte_rate + v.pending_chains * chain_rate

            scores = [score(view) for view in eligible.values()]
            if max(scores) - min(scores) >= RATE_TIE_EPSILON:
                chosen = min(
                    eligible.values(),
                    key=lambda v: (
                        score(v),
                        v.active_chains + v.pending_chains,
                        v.worker_id,
                    ),
                )
                chosen.pending_chains += 1
                self.stats.placed_chains += 1
                self.stats.placed_least_loaded += 1
                return chosen.worker_id, "least_loaded"
        wid = self.ring.pick(chain_key, set(eligible))
        if wid is None:
            # Ring drifted from the view (worker removed): repair by
            # falling back to the id-ordered first eligible worker.
            wid = sorted(eligible)[0]
        eligible[wid].pending_chains += 1
        self.stats.placed_chains += 1
        self.stats.placed_hash_ring += 1
        return wid, "hash_ring"


class AdmissionControl:
    """Per-client concurrent-chain quota at the fleet edge.

    ``max_chains_per_client=None`` disables the quota (every admit
    succeeds).  Clients are whatever string the edge identifies peers
    by — the live front door uses the peer IP, the sim fleet the
    client host name.
    """

    def __init__(self, max_chains_per_client: Optional[int] = None) -> None:
        if max_chains_per_client is not None and max_chains_per_client < 1:
            raise ValueError(
                f"max_chains_per_client must be >= 1 or None, "
                f"got {max_chains_per_client}"
            )
        self.max_chains_per_client = max_chains_per_client
        self.active: Dict[str, int] = {}

    def admit(self, client: str) -> bool:
        limit = self.max_chains_per_client
        if limit is not None and self.active.get(client, 0) >= limit:
            return False
        self.active[client] = self.active.get(client, 0) + 1
        return True

    def release(self, client: str) -> None:
        count = self.active.get(client, 0) - 1
        if count > 0:
            self.active[client] = count
        else:
            self.active.pop(client, None)


class TokenBucketCore:
    """Clock-agnostic token bucket (rate bytes/s, burst bytes).

    The caller owns time: :meth:`refill` with its clock's ``now``
    before :meth:`try_take`; :meth:`delay_for` says how long until
    ``n`` tokens will exist.  Exact arithmetic, no background task —
    which is what lets the DES plane drive it with simulated time.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else self.rate
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.tokens = self.burst
        self._last: Optional[float] = None

    def refill(self, now: float) -> None:
        if self._last is not None and now > self._last:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last) * self.rate
            )
        self._last = now if self._last is None or now > self._last else self._last

    def try_take(self, n: float) -> bool:
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def delay_for(self, n: float) -> float:
        """Seconds until ``n`` tokens will be available (0 if now).
        Debts larger than the burst accrue over multiple refills."""
        want = min(n, self.burst)
        if self.tokens >= want:
            return 0.0
        return (want - self.tokens) / self.rate


class TokenBucket:
    """Asyncio wrapper over :class:`TokenBucketCore` for the live edge.

    ``await acquire(n)`` debits ``n`` bytes, sleeping while the bucket
    is dry; ``waits`` counts the sleeps (surfaced in worker heartbeats
    as ``edge_throttle_waits``).  One bucket serializes its waiters —
    by design, as the bucket *is* the shared edge resource.
    """

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        self.core = TokenBucketCore(rate, burst)
        self.waits = 0
        self._lock = asyncio.Lock()

    async def acquire(self, n: float) -> None:
        loop = asyncio.get_running_loop()
        async with self._lock:
            # Debit in burst-sized installments: the bucket never holds
            # more than `burst` tokens, so a single request for n >
            # burst (an adaptive pump chunk can outgrow a small burst)
            # would otherwise spin forever — with the lock held,
            # freezing every chain sharing this edge.
            remaining = n
            while remaining > 0:
                self.core.refill(loop.time())
                step = min(remaining, self.core.burst)
                if self.core.try_take(step):
                    remaining -= step
                    continue
                self.waits += 1
                await asyncio.sleep(max(self.core.delay_for(step), 0.001))


def fleet_snapshot(
    mode: str,
    workers: "Iterable[WorkerView]",
    stats: PlacementStats,
    *,
    edge_throttle_waits: Optional[int] = None,
) -> "dict[str, Any]":
    """The fleet-wide counter snapshot, one schema for both planes.

    ``edge_throttle_waits`` overrides the stats counter when the edge
    buckets live elsewhere (live workers report theirs in heartbeats).
    """
    return {
        "mode": mode,
        "workers": {
            view.worker_id: view.snapshot() for view in workers
        },
        "placed_chains": stats.placed_chains,
        "placed_least_loaded": stats.placed_least_loaded,
        "placed_hash_ring": stats.placed_hash_ring,
        "rejected_quota": stats.rejected_quota,
        "rejected_no_worker": stats.rejected_no_worker,
        "edge_throttle_waits": (
            stats.edge_throttle_waits
            if edge_throttle_waits is None else edge_throttle_waits
        ),
        "handoffs": stats.handoffs,
        "drains_started": stats.drains_started,
        "drains_completed": stats.drains_completed,
    }
