"""The inner server: the relay daemon *inside* the firewall.

It listens on the **nxport** — the one inbound port the site firewall
must open, pinned to the outer server as the only permitted source
(§3: "only the communication port from the outer server to the inner
server must be opened in advance").

Each connection from the outer server starts with a
:class:`~repro.core.protocol.RelayTo` request naming an inside host and
port; the inner server opens that (intra-site, unfiltered) connection
and then pumps chunks both ways, completing the
``peer → outer → inner → client`` chain of a passive open (Fig. 4).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.config import DEFAULT_RELAY_CONFIG, RelayConfig
from repro.core.outer import RelayStats
from repro.core.pump import relay_pump
from repro.obs import spans as _obs
from repro.obs import trace as _trace
from repro.core.protocol import REPLY_MSG_BYTES, Reply, RelayTo
from repro.simnet.host import Host
from repro.simnet.kernel import Event, Process
from repro.simnet.socket import (
    Address,
    Connection,
    ConnectionReset,
    ListenSocket,
    SocketError,
)

__all__ = ["InnerServer"]


class InnerServer:
    """The relay daemon running inside the firewall."""

    def __init__(self, host: Host, config: RelayConfig = DEFAULT_RELAY_CONFIG) -> None:
        config.validate()
        self.host = host
        self.sim = host.sim
        self.config = config
        self.stats = RelayStats()
        self._sock: Optional[ListenSocket] = None
        self._accept_proc: Optional[Process] = None

    @property
    def addr(self) -> Address:
        return Address(self.host.name, self.config.nxport)

    @property
    def running(self) -> bool:
        return self._sock is not None and not self._sock.closed

    def open_firewall_pinhole(self, outer_host_name: str) -> None:
        """Configure this site's firewall with the single nxport hole,
        pinned to the outer server (the deployment step of §3)."""
        site = self.host.site
        if site is None or site.firewall is None:
            return
        site.firewall.open_inbound_port(
            self.config.nxport,
            src_host=outer_host_name,
            dst_host=self.host.name,
            comment="nxport: outer server -> inner server",
        )

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "InnerServer":
        if self.running:
            raise SocketError(f"inner server on {self.host.name} already running")
        self._sock = self.host.listen(self.config.nxport, backlog=self.config.backlog)
        self._accept_proc = self.sim.process(
            self._accept_loop(), name=f"inner-accept@{self.host.name}"
        )
        return self

    def stop(self) -> None:
        if self._sock is not None:
            self._sock.close()

    # -- relay chains -------------------------------------------------------------

    def _accept_loop(self) -> Iterator[Event]:
        assert self._sock is not None
        while True:
            try:
                conn = yield self._sock.accept()
            except SocketError:
                return
            self.sim.process(
                self._session(conn), name=f"inner-session@{self.host.name}"
            )

    def _session(self, conn: Connection) -> Iterator[Event]:
        t0 = self.sim.now
        self.stats.nxport_connections += 1
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_instant("relay", "nxport_connection", t0,
                            track=f"inner:{self.host.name}",
                            total=self.stats.nxport_connections)
        try:
            first = yield conn.recv()
        except ConnectionReset:
            return
        request = first.payload
        yield from self.host.execute(self.config.request_cpu)
        if not isinstance(request, RelayTo):
            self.stats.failed_requests += 1
            yield conn.send(
                Reply(ok=False, error=f"bad request {type(request).__name__}"),
                nbytes=REPLY_MSG_BYTES,
            )
            conn.close()
            return
        try:
            onward = yield from self.host.connect((request.dest_host, request.dest_port))
        except SocketError as exc:
            self.stats.failed_requests += 1
            yield conn.send(Reply(ok=False, error=str(exc)), nbytes=REPLY_MSG_BYTES)
            conn.close()
            return
        self.stats.passive_chains += 1
        yield conn.send(Reply(ok=True), nbytes=REPLY_MSG_BYTES)
        self.stats.chain_setup_us.record(int((self.sim.now - t0) * 1e6))
        ctx = _trace.accept(request.tctx)
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_span("relay", "chain_setup", t0, self.sim.now,
                         track=f"inner:{self.host.name}", kind="passive",
                         dest=f"{request.dest_host}:{request.dest_port}",
                         **_trace.span_args(ctx))
        self.sim.process(self._pump(conn, onward), name=f"pump@{self.host.name}")
        self.sim.process(self._pump(onward, conn), name=f"pump@{self.host.name}")

    def _pump(self, src: Connection, dst: Connection) -> Iterator[Event]:
        """Forward chunks src→dst until either side goes away (see
        :func:`repro.core.pump.relay_pump` for the cost model)."""
        yield from relay_pump(self.host, self.config, self.stats, src, dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"<InnerServer {self.addr} {state}>"
