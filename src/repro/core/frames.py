"""Chunk framing for relayed communication.

The real Nexus Proxy is transparent at the byte level: the relay reads
whatever the socket delivers (its read-buffer granularity) and writes
it onward.  Our simulated transport is message-oriented, so we make the
chunking explicit: a :class:`FramedConnection` splits every application
message into :class:`DataFrame` chunks of the relay's buffer size and
reassembles them at the far end.  Relay servers forward frames
*opaquely* — they never look inside — paying their per-chunk processing
cost for each one, which is exactly the cost structure that produces
the paper's Table 2 (large per-chunk cost ⇒ 25 ms proxied latency and
an order-of-magnitude bandwidth drop on fast LANs, yet negligible
overhead when a 1.5 Mbps WAN is the bottleneck).

Both proxied and direct Nexus connections use the same framing (Nexus
has its own message protocol on the wire), so a proxied endpoint can
talk to a direct one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.simnet.kernel import Event, Process
from repro.simnet.socket import Connection, SocketError

__all__ = ["DataFrame", "FrameError", "FramedConnection", "FRAME_HEADER_BYTES"]

#: Wire overhead per chunk frame (message id, index, count, length).
FRAME_HEADER_BYTES = 16

#: Default chunk size — the relay's read-buffer granularity.
DEFAULT_CHUNK_BYTES = 1024

_stream_ids = itertools.count(1)


class FrameError(SocketError):
    """Protocol violation in the frame stream (e.g. out-of-order chunk)."""


@dataclass(frozen=True, slots=True)
class DataFrame:
    """One chunk of an application message.

    Only the final frame of a message carries the Python-level
    ``payload`` (the simulator doesn't slice real bytes); all frames
    carry their simulated sizes.
    """

    stream_id: int
    msg_seq: int
    index: int
    count: int
    chunk_bytes: int
    total_bytes: int
    payload: Any = None
    #: Optional causal trace context (wire form).  Stamped on every
    #: frame of a tagged message so relays can attribute forwarded
    #: bytes per trace without looking at the payload; ``None`` (the
    #: seed wire format) everywhere else.
    tctx: Optional[str] = None

    @property
    def is_last(self) -> bool:
        return self.index == self.count - 1

    @property
    def wire_bytes(self) -> int:
        return FRAME_HEADER_BYTES + self.chunk_bytes


class FramedConnection:
    """Message send/recv over chunk frames on a transport connection.

    ``send`` splits a message into ``chunk_bytes`` frames; ``recv``
    reassembles.  Because the sender serializes frames of one message,
    frames never interleave between messages on a single connection.
    """

    def __init__(self, conn: Connection, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        if chunk_bytes <= 0:
            raise FrameError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.conn = conn
        self.chunk_bytes = chunk_bytes
        self.stream_id = next(_stream_ids)
        self._send_seq = 0
        #: Messages fully sent / received through this wrapper.
        self.messages_sent = 0
        self.messages_received = 0

    # -- passthrough conveniences -----------------------------------------

    @property
    def sim(self):
        return self.conn.sim

    @property
    def local_addr(self):
        return self.conn.local_addr

    @property
    def remote_addr(self):
        return self.conn.remote_addr

    @property
    def closed(self) -> bool:
        return self.conn.closed

    def close(self) -> None:
        self.conn.close()

    # -- sending ------------------------------------------------------------

    def send(
        self,
        payload: Any,
        nbytes: Optional[int] = None,
        tctx: Optional[str] = None,
    ) -> Process:
        """Send one message as a train of chunk frames.

        ``tctx`` tags every frame with a causal trace context; when
        omitted and tracing is on, it is sniffed from the payload's
        own ``tctx`` attribute (MPI envelopes, control requests).
        """
        if nbytes is None:
            from repro.simnet.socket import wire_size

            nbytes = wire_size(payload, self.conn.network.config.default_msg_bytes)
        if nbytes <= 0:
            raise FrameError(f"message size must be positive, got {nbytes}")
        if tctx is None:
            from repro.obs import trace as _trace

            if _trace.ENABLED:
                tctx = getattr(payload, "tctx", None)
        return self.sim.process(
            self._send_proc(payload, nbytes, tctx),
            name=f"framed-send->{self.remote_addr}",
        )

    def _send_proc(
        self, payload: Any, nbytes: int, tctx: Optional[str] = None
    ) -> Iterator[Event]:
        self._send_seq += 1
        seq = self._send_seq
        count = max(1, -(-nbytes // self.chunk_bytes))
        remaining = nbytes
        for index in range(count):
            chunk = min(self.chunk_bytes, remaining)
            remaining -= chunk
            frame = DataFrame(
                stream_id=self.stream_id,
                msg_seq=seq,
                index=index,
                count=count,
                chunk_bytes=chunk,
                total_bytes=nbytes,
                payload=payload if index == count - 1 else None,
                tctx=tctx,
            )
            yield self.conn.send(frame, nbytes=frame.wire_bytes)
        self.messages_sent += 1

    # -- receiving -----------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Iterator[Event]:
        """Generator: ``msg = yield from framed.recv()``.

        Returns ``(payload, nbytes)``; validates frame sequencing and
        raises :class:`FrameError` on corruption.
        """
        first = yield self.conn.recv(timeout=timeout)
        frame = first.payload
        if not isinstance(frame, DataFrame):
            raise FrameError(f"expected DataFrame, got {type(frame).__name__}")
        if frame.index != 0:
            raise FrameError(
                f"message starts at chunk {frame.index}, expected 0 "
                f"(msg {frame.msg_seq})"
            )
        count = frame.count
        total = frame.total_bytes
        seq = frame.msg_seq
        for expected in range(1, count):
            msg = yield self.conn.recv(timeout=timeout)
            frame = msg.payload
            if not isinstance(frame, DataFrame):
                raise FrameError(f"expected DataFrame, got {type(frame).__name__}")
            if frame.msg_seq != seq or frame.index != expected:
                raise FrameError(
                    f"out-of-order frame: got (msg {frame.msg_seq}, "
                    f"chunk {frame.index}), expected (msg {seq}, chunk {expected})"
                )
        self.messages_received += 1
        return frame.payload, total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FramedConnection {self.conn!r} chunk={self.chunk_bytes}>"
