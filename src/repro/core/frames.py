"""Chunk framing for relayed communication.

The real Nexus Proxy is transparent at the byte level: the relay reads
whatever the socket delivers (its read-buffer granularity) and writes
it onward.  Our simulated transport is message-oriented, so we make the
chunking explicit: a :class:`FramedConnection` splits every application
message into :class:`DataFrame` chunks of the relay's buffer size and
reassembles them at the far end.  Relay servers forward frames
*opaquely* — they never look inside — paying their per-chunk processing
cost for each one, which is exactly the cost structure that produces
the paper's Table 2 (large per-chunk cost ⇒ 25 ms proxied latency and
an order-of-magnitude bandwidth drop on fast LANs, yet negligible
overhead when a 1.5 Mbps WAN is the bottleneck).

Both proxied and direct Nexus connections use the same framing (Nexus
has its own message protocol on the wire), so a proxied endpoint can
talk to a direct one.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from repro.simnet.kernel import Event, Process
from repro.simnet.socket import Connection, SocketError

__all__ = [
    "DataFrame",
    "FrameError",
    "FramedConnection",
    "FRAME_HEADER_BYTES",
    "STRIPE_FRAME_BYTES",
    "StripeBlock",
    "recv_striped",
    "send_striped",
]

#: Wire overhead per chunk frame (message id, index, count, length).
FRAME_HEADER_BYTES = 16

#: Default chunk size — the relay's read-buffer granularity.
DEFAULT_CHUNK_BYTES = 1024

_stream_ids = itertools.count(1)


class FrameError(SocketError):
    """Protocol violation in the frame stream (e.g. out-of-order chunk)."""


@dataclass(frozen=True, slots=True)
class DataFrame:
    """One chunk of an application message.

    Only the final frame of a message carries the Python-level
    ``payload`` (the simulator doesn't slice real bytes); all frames
    carry their simulated sizes.
    """

    stream_id: int
    msg_seq: int
    index: int
    count: int
    chunk_bytes: int
    total_bytes: int
    payload: Any = None
    #: Optional causal trace context (wire form).  Stamped on every
    #: frame of a tagged message so relays can attribute forwarded
    #: bytes per trace without looking at the payload; ``None`` (the
    #: seed wire format) everywhere else.
    tctx: Optional[str] = None

    @property
    def is_last(self) -> bool:
        return self.index == self.count - 1

    @property
    def wire_bytes(self) -> int:
        return FRAME_HEADER_BYTES + self.chunk_bytes


class FramedConnection:
    """Message send/recv over chunk frames on a transport connection.

    ``send`` splits a message into ``chunk_bytes`` frames; ``recv``
    reassembles.  Because the sender serializes frames of one message,
    frames never interleave between messages on a single connection.
    """

    def __init__(self, conn: Connection, chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        if chunk_bytes <= 0:
            raise FrameError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.conn = conn
        self.chunk_bytes = chunk_bytes
        self.stream_id = next(_stream_ids)
        self._send_seq = 0
        #: Messages fully sent / received through this wrapper.
        self.messages_sent = 0
        self.messages_received = 0

    # -- passthrough conveniences -----------------------------------------

    @property
    def sim(self):
        return self.conn.sim

    @property
    def local_addr(self):
        return self.conn.local_addr

    @property
    def remote_addr(self):
        return self.conn.remote_addr

    @property
    def closed(self) -> bool:
        return self.conn.closed

    def close(self) -> None:
        self.conn.close()

    # -- sending ------------------------------------------------------------

    def send(
        self,
        payload: Any,
        nbytes: Optional[int] = None,
        tctx: Optional[str] = None,
    ) -> Process:
        """Send one message as a train of chunk frames.

        ``tctx`` tags every frame with a causal trace context; when
        omitted and tracing is on, it is sniffed from the payload's
        own ``tctx`` attribute (MPI envelopes, control requests).
        """
        if nbytes is None:
            from repro.simnet.socket import wire_size

            nbytes = wire_size(payload, self.conn.network.config.default_msg_bytes)
        if nbytes <= 0:
            raise FrameError(f"message size must be positive, got {nbytes}")
        if tctx is None:
            from repro.obs import trace as _trace

            if _trace.ENABLED:
                tctx = getattr(payload, "tctx", None)
        return self.sim.process(
            self._send_proc(payload, nbytes, tctx),
            name=f"framed-send->{self.remote_addr}",
        )

    def _send_proc(
        self, payload: Any, nbytes: int, tctx: Optional[str] = None
    ) -> Iterator[Event]:
        self._send_seq += 1
        seq = self._send_seq
        count = max(1, -(-nbytes // self.chunk_bytes))
        remaining = nbytes
        for index in range(count):
            chunk = min(self.chunk_bytes, remaining)
            remaining -= chunk
            frame = DataFrame(
                stream_id=self.stream_id,
                msg_seq=seq,
                index=index,
                count=count,
                chunk_bytes=chunk,
                total_bytes=nbytes,
                payload=payload if index == count - 1 else None,
                tctx=tctx,
            )
            yield self.conn.send(frame, nbytes=frame.wire_bytes)
        self.messages_sent += 1

    # -- receiving -----------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Iterator[Event]:
        """Generator: ``msg = yield from framed.recv()``.

        Returns ``(payload, nbytes)``; validates frame sequencing and
        raises :class:`FrameError` on corruption.
        """
        first = yield self.conn.recv(timeout=timeout)
        frame = first.payload
        if not isinstance(frame, DataFrame):
            raise FrameError(f"expected DataFrame, got {type(frame).__name__}")
        if frame.index != 0:
            raise FrameError(
                f"message starts at chunk {frame.index}, expected 0 "
                f"(msg {frame.msg_seq})"
            )
        count = frame.count
        total = frame.total_bytes
        seq = frame.msg_seq
        for expected in range(1, count):
            msg = yield self.conn.recv(timeout=timeout)
            frame = msg.payload
            if not isinstance(frame, DataFrame):
                raise FrameError(f"expected DataFrame, got {type(frame).__name__}")
            if frame.msg_seq != seq or frame.index != expected:
                raise FrameError(
                    f"out-of-order frame: got (msg {frame.msg_seq}, "
                    f"chunk {frame.index}), expected (msg {seq}, chunk {expected})"
                )
        self.messages_received += 1
        return frame.payload, total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FramedConnection {self.conn!r} chunk={self.chunk_bytes}>"


# -- GridFTP-style striped bulk transfers ---------------------------------
#
# Mirror of the live plane's parallel-stream wire format
# (:mod:`repro.core.aio.streams`): a transfer is split into
# offset-tagged blocks striped across k connections; the sink sends
# restart markers (its contiguous watermark) back upstream, and a dead
# stream's unacknowledged blocks are requeued onto its siblings so the
# transfer never restarts from offset 0.  Relays stay oblivious —
# stripe messages ride the same chunk frames as any other traffic.

#: Per stripe message header (live plane: ``struct !BQI`` — kind,
#: offset, length).
STRIPE_FRAME_BYTES = 13

#: JSON hello line announcing a stream on the live wire; modelled as a
#: fixed-size control message here.
STRIPE_HELLO_BYTES = 64

#: Default stripe block size (matches the live plane's DEFAULT_BLOCK).
DEFAULT_STRIPE_BLOCK = 256 * 1024

_xfer_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class StripeBlock:
    """One wire message of a striped bulk transfer.

    ``kind`` is one of ``"hello"`` (per-stream announcement carrying
    the transfer geometry), ``"block"`` (offset-tagged payload),
    ``"end"`` (sender is done on this stream) or ``"mark"`` (restart
    marker: the sink's contiguous watermark, flowing sink→source).
    """

    xfer: str
    stream: int
    kind: str
    offset: int = 0
    length: int = 0
    total: int = 0
    streams: int = 1
    block: int = 0

    @property
    def wire_bytes(self) -> int:
        if self.kind == "hello":
            return STRIPE_HELLO_BYTES
        if self.kind == "block":
            return STRIPE_FRAME_BYTES + self.length
        return STRIPE_FRAME_BYTES


class _StripeSendState:
    """Shared sender-side progress for one striped transfer."""

    def __init__(self, sim, xfer: str, total: int, block: int) -> None:
        self.sim = sim
        self.xfer = xfer
        self.total = total
        self.block = block
        self.pending: deque[int] = deque(range(0, total, block))
        #: Highest contiguous offset acknowledged by the sink.
        self.watermark = 0
        self.bytes_sent = 0
        self.blocks_sent = 0
        self.requeued_blocks = 0
        self.dead_streams = 0
        self._progress = sim.event()

    @property
    def done(self) -> bool:
        return self.watermark >= self.total

    def notify(self) -> None:
        event, self._progress = self._progress, self.sim.event()
        event.succeed()

    def wait_progress(self) -> Event:
        return self._progress

    def mark(self, offset: int) -> None:
        """Advance the restart marker; stale/duplicate marks are no-ops."""
        if offset > self.watermark:
            self.watermark = offset
            self.notify()

    def requeue(self, offsets) -> None:
        """Put a dead stream's unacknowledged blocks back on the queue."""
        fresh = [
            o for o in sorted(offsets)
            if o >= self.watermark and o not in self.pending
        ]
        if fresh:
            self.pending.extend(fresh)
            self.requeued_blocks += len(fresh)
        self.notify()


def _send_stream(
    state: _StripeSendState,
    framed: FramedConnection,
    idx: int,
    streams: int,
    inflight: "set[int]",
) -> Iterator[Event]:
    """One sender stream: hello, then blocks off the shared queue."""
    hello = StripeBlock(
        state.xfer, idx, "hello",
        total=state.total, streams=streams, block=state.block,
    )
    try:
        yield framed.send(hello, nbytes=hello.wire_bytes)
        while not state.done:
            inflight -= {o for o in inflight if o < state.watermark}
            if not state.pending:
                yield state.wait_progress()
                continue
            offset = state.pending.popleft()
            length = min(state.block, state.total - offset)
            inflight.add(offset)
            blk = StripeBlock(
                state.xfer, idx, "block",
                offset=offset, length=length, total=state.total,
            )
            yield framed.send(blk, nbytes=blk.wire_bytes)
            state.bytes_sent += length
            state.blocks_sent += 1
        end = StripeBlock(state.xfer, idx, "end")
        yield framed.send(end, nbytes=end.wire_bytes)
    except SocketError:
        # Stream died: its unacknowledged blocks ride the siblings.
        state.dead_streams += 1
        state.requeue(inflight)


def _read_marks(
    state: _StripeSendState, framed: FramedConnection, inflight: "set[int]"
) -> Iterator[Event]:
    """Per-stream restart-marker reader (sink → source direction).

    Death detection mirrors the live plane: a reset here means the
    stream is gone, so its unacknowledged blocks are requeued even if
    the send loop is idle-waiting and would never notice on its own.
    (A block the sibling already carried may get requeued once more;
    the sink's dedupe absorbs it, exactly as on the live wire.)
    """
    while not state.done:
        try:
            payload, _ = yield from framed.recv()
        except SocketError:
            state.requeue(inflight)
            return
        if isinstance(payload, StripeBlock) and payload.kind == "mark":
            state.mark(payload.offset)


def send_striped(
    conns: "list[FramedConnection]",
    nbytes: int,
    block_bytes: int = DEFAULT_STRIPE_BLOCK,
    xfer: Optional[str] = None,
) -> Iterator[Event]:
    """Generator: stripe one ``nbytes`` bulk transfer across ``conns``.

    Returns a report dict (``bytes_sent``, ``requeued_blocks``, ...).
    Raises :class:`FrameError` if every stream dies before the sink
    acknowledges the full transfer.
    """
    if not conns:
        raise FrameError("send_striped needs at least one connection")
    if nbytes < 0:
        raise FrameError(f"transfer size must be >= 0, got {nbytes}")
    if block_bytes <= 0:
        raise FrameError(f"block_bytes must be positive, got {block_bytes}")
    sim = conns[0].sim
    if xfer is None:
        xfer = f"xfer-{next(_xfer_ids)}"
    state = _StripeSendState(sim, xfer, nbytes, block_bytes)
    senders = []
    for idx, framed in enumerate(conns):
        inflight: set[int] = set()
        senders.append(
            sim.process(
                _send_stream(state, framed, idx, len(conns), inflight),
                name=f"stripe-send[{idx}]",
            )
        )
        sim.process(
            _read_marks(state, framed, inflight), name=f"stripe-marks[{idx}]"
        )
    yield sim.all_of(senders)
    if not state.done:
        raise FrameError(
            f"striped transfer {xfer} stalled at {state.watermark}/{nbytes} "
            f"bytes ({state.dead_streams} dead streams)"
        )
    return {
        "xfer": xfer,
        "streams": len(conns),
        "block_bytes": block_bytes,
        "total_bytes": nbytes,
        "bytes_sent": state.bytes_sent,
        "blocks_sent": state.blocks_sent,
        "requeued_blocks": state.requeued_blocks,
        "dead_streams": state.dead_streams,
    }


class _StripeRecvState:
    """Shared sink-side reassembly for one striped transfer."""

    def __init__(self, hello: StripeBlock) -> None:
        self.xfer = hello.xfer
        self.total = hello.total
        self.block = hello.block
        self.received: dict[int, int] = {}
        self.watermark = 0
        self.duplicate_blocks = 0
        self.marks_sent = 0
        self.streams_seen = 0

    @property
    def done(self) -> bool:
        return self.watermark >= self.total

    def accept_block(self, offset: int, length: int) -> bool:
        """Record one block; returns whether the watermark advanced."""
        if offset in self.received:
            self.duplicate_blocks += 1
            return False
        if offset < 0 or offset + length > self.total:
            raise FrameError(
                f"stripe block [{offset}, {offset + length}) outside "
                f"transfer of {self.total} bytes"
            )
        self.received[offset] = length
        advanced = False
        while self.watermark in self.received:
            self.watermark += self.received[self.watermark]
            advanced = True
        return advanced


def _recv_stream(
    state: _StripeRecvState, framed: FramedConnection, idx: int
) -> Iterator[Event]:
    """One sink stream: announce the watermark, reassemble blocks."""
    state.streams_seen += 1
    try:
        mark = StripeBlock(state.xfer, idx, "mark", offset=state.watermark)
        yield framed.send(mark, nbytes=mark.wire_bytes)
        state.marks_sent += 1
        while True:
            payload, _ = yield from framed.recv()
            if not isinstance(payload, StripeBlock) or payload.xfer != state.xfer:
                raise FrameError(f"unexpected stripe message: {payload!r}")
            if payload.kind == "end":
                return
            if payload.kind != "block":
                raise FrameError(f"unexpected {payload.kind} frame at sink")
            if state.accept_block(payload.offset, payload.length) or state.done:
                mark = StripeBlock(
                    state.xfer, idx, "mark", offset=state.watermark
                )
                yield framed.send(mark, nbytes=mark.wire_bytes)
                state.marks_sent += 1
    except SocketError:
        # Stream died; siblings carry its blocks after the sender
        # requeues from our last restart marker.
        return


def recv_striped(
    accept: Callable[..., Iterator[Event]],
    timeout: Optional[float] = None,
) -> Iterator[Event]:
    """Generator: receive one striped transfer whose streams arrive via
    ``accept()`` (e.g. ``ProxiedListener.accept``).  Returns a report
    dict; raises :class:`FrameError` if the transfer never completes.
    """
    framed = yield from accept(timeout=timeout)
    payload, _ = yield from framed.recv(timeout=timeout)
    if not isinstance(payload, StripeBlock) or payload.kind != "hello":
        raise FrameError(f"expected stripe hello, got {payload!r}")
    state = _StripeRecvState(payload)
    sim = framed.sim
    handlers = [sim.process(_recv_stream(state, framed, 0), name="stripe-recv[0]")]
    for idx in range(1, payload.streams):
        framed_n = yield from accept(timeout=timeout)
        hello_n, _ = yield from framed_n.recv(timeout=timeout)
        if not isinstance(hello_n, StripeBlock) or hello_n.kind != "hello":
            raise FrameError(f"expected stripe hello, got {hello_n!r}")
        if hello_n.xfer != state.xfer:
            raise FrameError(
                f"stream for transfer {hello_n.xfer} joined {state.xfer}"
            )
        handlers.append(
            sim.process(
                _recv_stream(state, framed_n, idx), name=f"stripe-recv[{idx}]"
            )
        )
    yield sim.all_of(handlers)
    if not state.done:
        raise FrameError(
            f"striped transfer {state.xfer} incomplete: "
            f"{state.watermark}/{state.total} bytes"
        )
    return {
        "xfer": state.xfer,
        "total_bytes": state.total,
        "streams_seen": state.streams_seen,
        "duplicate_blocks": state.duplicate_blocks,
        "marks_sent": state.marks_sent,
    }
