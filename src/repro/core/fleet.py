"""Sim-plane mirror of the relay fleet's placement and edge policy.

The live fleet (:mod:`repro.core.aio.fleet`) shards the outer daemon
across worker *processes*; a discrete-event scenario has no processes
to shard, but the thing worth modelling — *which worker gets the next
chain, who is refused, and what a drain does to the load* — is pure
policy, and :class:`SimFleet` runs exactly the same policy objects
(:class:`~repro.core.placement.LeastLoadedPlacer`,
:class:`~repro.core.placement.AdmissionControl`,
:class:`~repro.core.placement.TokenBucketCore`) against
:class:`~repro.core.outer.OuterServer` instances on simulated hosts,
driven by the DES clock instead of wall time and heartbeat messages.

Where the live manager hands a file descriptor to the placed worker,
a scenario asks the fleet where to dial::

    fleet = SimFleet(sim, [outer_a, outer_b], max_chains_per_client=4)
    fleet.start()                      # heartbeat sampling process
    addr = fleet.place("client-3")     # front-door decision
    if addr is not None:
        client = NexusProxyClient(host, outer_addr=addr)
        ...                            # ordinary Fig. 3 / Fig. 4 traffic
        fleet.release("client-3", addr.host)   # chain ended (live: 'closed')

The heartbeat process samples every worker's ``stats.bytes_relayed``
each interval — the sim analogue of worker heartbeats — so placement
sees the same byte-rate EWMA signal the live placer does.

:meth:`SimFleet.snapshot` and the live
:meth:`~repro.core.aio.fleet.FleetManager.snapshot` are built by the
same :func:`~repro.core.placement.fleet_snapshot` helper, so their key
schemas are identical by construction (the fleet-level analogue of the
relay-stats parity asserted since PR 3).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.outer import OuterServer
from repro.core.placement import (
    WORKER_DRAINING,
    WORKER_GONE,
    WORKER_UP,
    AdmissionControl,
    LeastLoadedPlacer,
    TokenBucketCore,
    WorkerView,
    fleet_snapshot,
)
from repro.simnet.kernel import Event
from repro.simnet.socket import Address

__all__ = ["SimFleet"]


class SimFleet:
    """A sharded relay modelled as placement policy over N simulated
    outer servers.

    ``workers`` are started/stopped by the scenario; the fleet only
    decides placement, enforces the edge policy, and keeps the shared
    fleet snapshot.  One logical chain = one :meth:`place` (+ a
    matching :meth:`release` when it ends); consecutive chains of one
    transfer should pass distinct ``chain_key`` values, as the live
    front door derives its key from the client's ephemeral port.
    """

    def __init__(
        self,
        sim,
        workers: "Sequence[OuterServer]",
        *,
        max_chains_per_client: Optional[int] = None,
        edge_rate_bytes_per_s: Optional[float] = None,
        edge_burst_bytes: Optional[float] = None,
        heartbeat_s: float = 0.25,
    ) -> None:
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        self.sim = sim
        self.heartbeat_s = heartbeat_s
        self.placer = LeastLoadedPlacer()
        self.admission = AdmissionControl(max_chains_per_client)
        self.edge_bucket = (
            TokenBucketCore(edge_rate_bytes_per_s, edge_burst_bytes)
            if edge_rate_bytes_per_s is not None else None
        )
        self._edge_waits = 0
        self.workers: "Dict[str, OuterServer]" = {}
        self.views: "Dict[str, WorkerView]" = {}
        self._chain_seq = 0
        self._hb_proc = None
        self.sampler = None
        for outer in workers:
            wid = outer.host.name
            if wid in self.workers:
                raise ValueError(f"duplicate fleet worker host {wid!r}")
            self.workers[wid] = outer
            view = WorkerView(wid)
            self.views[wid] = view
            self.placer.add_worker(view)

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "SimFleet":
        """Begin heartbeat sampling (call after ``sim`` is running or
        before ``sim.run`` — the process just wakes every interval)."""
        if self._hb_proc is None:
            self._hb_proc = self.sim.process(
                self._heartbeat_loop(), name="fleet-heartbeats"
            )
        return self

    def _heartbeat_loop(self) -> Iterator[Event]:
        while True:
            self.observe()
            yield self.sim.timeout(self.heartbeat_s)

    def start_sampler(self, interval_s: float = 1.0, capacity: int = 240):
        """Record the fleet snapshot into a sim-clock time series.

        The sampler attaches through :meth:`Simulator.every`, so its
        wakeups are ordinary heap events: the perturbation is identical
        under every kernel mode and the exported series is byte-stable
        across ``REPRO_SIM_KERNEL=seed|fast`` — same guarantee as the
        kernel-throughput sampler in :mod:`repro.obs.spans`."""
        from repro.obs.timeseries import TimeSeriesSampler

        if self.sampler is None:
            self.sampler = TimeSeriesSampler(
                self.snapshot, interval_s=interval_s, capacity=capacity,
                domain="sim",
            )
            self.sampler.attach_sim(self.sim, name="fleet-series-sampler")
        return self.sampler

    def observe(self) -> None:
        """Sample every live worker's relay stats into its view — the
        sim analogue of one round of worker heartbeats."""
        now = self.sim.now
        for wid, outer in self.workers.items():
            view = self.views[wid]
            if view.state == WORKER_GONE:
                continue
            view.observe(now, outer.stats.bytes_relayed, view.active_chains)

    # -- front door -------------------------------------------------------

    def place(
        self, client: str, chain_key: Optional[str] = None
    ) -> Optional[Address]:
        """Admit and place one chain; returns the chosen worker's
        control address, or ``None`` when the edge refuses (quota, or
        no healthy worker) — counted exactly like the live front door.
        """
        if not self.admission.admit(client):
            self.placer.stats.rejected_quota += 1
            return None
        if chain_key is None:
            self._chain_seq += 1
            chain_key = f"{client}#{self._chain_seq}"
        wid, _method = self.placer.place(chain_key, self.views, self.sim.now)
        if wid is None:
            self.admission.release(client)
            return None
        self.placer.stats.handoffs += 1
        view = self.views[wid]
        view.active_chains += 1
        return self.workers[wid].control_addr

    def release(self, client: str, worker: str) -> None:
        """One placed chain ended (the live plane's ``closed``
        notification): releases the client's quota slot and the
        worker's optimistic chain count."""
        self.admission.release(client)
        view = self.views.get(worker)
        if view is not None and view.active_chains > 0:
            view.active_chains -= 1
        if view is not None:
            self._maybe_finish_drain(view)

    def edge_delay(self, nbytes: int) -> float:
        """Seconds a transfer must stall for the fleet edge rate cap
        before moving ``nbytes`` (0 without a cap).  Scenarios model
        the cap as ``yield sim.timeout(fleet.edge_delay(n))`` before
        the send; the debit happens here either way."""
        bucket = self.edge_bucket
        if bucket is None:
            return 0.0
        bucket.refill(self.sim.now)
        if bucket.try_take(nbytes):
            return 0.0
        self._edge_waits += 1
        delay = bucket.delay_for(nbytes)
        # The caller waits out `delay`; advance the bucket to the end
        # of that stall and take the tokens there.
        bucket.refill(self.sim.now + delay)
        bucket.try_take(min(nbytes, bucket.burst))
        return delay

    # -- drain ------------------------------------------------------------

    def drain(self, worker: str) -> None:
        """Exclude ``worker`` from placement (live: stop handing it
        chains).  The drain completes — worker ``gone`` — once its
        placed chains are released, or immediately when it has none."""
        view = self.views.get(worker)
        if view is None:
            raise KeyError(f"no such fleet worker {worker!r}")
        if view.state != WORKER_UP:
            return
        view.state = WORKER_DRAINING
        self.placer.stats.drains_started += 1
        self._maybe_finish_drain(view)

    def _maybe_finish_drain(self, view: WorkerView) -> None:
        if view.state == WORKER_DRAINING and view.active_chains == 0:
            view.state = WORKER_GONE
            self.placer.stats.drains_completed += 1
            self.placer.remove_worker(view.worker_id)

    def finish_drains(self) -> None:
        """Complete any drains whose workers have no chains left
        (scenarios call this after releasing chains)."""
        for view in self.views.values():
            self._maybe_finish_drain(view)

    # -- observability ----------------------------------------------------

    def snapshot(self) -> "dict[str, object]":
        """Fleet counters; key schema shared with the live
        :meth:`repro.core.aio.fleet.FleetManager.snapshot`."""
        return fleet_snapshot(
            "sim",
            self.views.values(),
            self.placer.stats,
            edge_throttle_waits=self._edge_waits,
        )
