"""Nexus Proxy control protocol.

The handshake messages exchanged between client libraries and the
relay servers, with their simulated wire sizes.  Mirrors §3 of the
paper:

* an **active** open (Fig. 3) sends a *connect request* to the outer
  server, which opens the onward connection and then relays;
* a **passive** open (Fig. 4) sends a *bind request*; the outer server
  binds a public port, and every peer that connects there is chained
  ``peer → outer → inner → client`` via a *relay-to* request on the
  nxport.

This module is shared by the simulated servers
(:mod:`repro.core.outer`, :mod:`repro.core.inner`); the real asyncio
implementation speaks a byte-level rendition of the same messages
(:mod:`repro.core.aio.protocol`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simnet.socket import SocketError

__all__ = [
    "NXProxyError",
    "ConnectRequest",
    "BindRequest",
    "RelayTo",
    "Reply",
    "BindReply",
    "CONTROL_MSG_BYTES",
    "REPLY_MSG_BYTES",
]

#: Wire size of client→server control requests (host + port + opcode).
CONTROL_MSG_BYTES = 64
#: Wire size of server→client replies.
REPLY_MSG_BYTES = 16


class NXProxyError(SocketError):
    """A relay request failed (refused, unreachable, protocol error)."""


@dataclass(frozen=True, slots=True)
class ConnectRequest:
    """Active open: 'connect me to dest and relay' (Fig. 3 step 1)."""

    dest_host: str
    dest_port: int
    #: Shared secret, when the deployment requires one.
    secret: Optional[str] = None
    #: Optional causal trace context (wire form); ``None`` from
    #: untagged (seed) peers — servers must treat both alike.
    tctx: Optional[str] = None


@dataclass(frozen=True, slots=True)
class BindRequest:
    """Passive open: 'bind a public port for me' (Fig. 4 step 1).

    Carries everything the outer server needs to complete later
    chains: where the client privately listens, and which inner server
    can reach it.
    """

    client_host: str
    client_port: int
    inner_host: str
    inner_port: int
    #: Shared secret, when the deployment requires one.
    secret: Optional[str] = None
    #: Optional causal trace context (wire form).
    tctx: Optional[str] = None


@dataclass(frozen=True, slots=True)
class RelayTo:
    """Outer→inner: 'connect to this inside host and relay'
    (Fig. 4 step 4-1/4-2)."""

    dest_host: str
    dest_port: int
    #: Optional causal trace context (wire form), forwarded from the
    #: bind-time chain so the inner hop joins the same tree.
    tctx: Optional[str] = None


@dataclass(frozen=True, slots=True)
class Reply:
    """Generic ok/error reply."""

    ok: bool
    error: Optional[str] = None

    def raise_for_error(self, context: str) -> None:
        if not self.ok:
            raise NXProxyError(f"{context}: {self.error or 'relay refused'}")


@dataclass(frozen=True, slots=True)
class BindReply:
    """Reply to a bind request: the publicly reachable proxy address."""

    ok: bool
    proxy_host: str = ""
    proxy_port: int = 0
    error: Optional[str] = None

    def raise_for_error(self, context: str) -> None:
        if not self.ok:
            raise NXProxyError(f"{context}: {self.error or 'bind refused'}")
