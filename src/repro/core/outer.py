"""The outer server: the relay daemon *outside* the firewall.

Handles two kinds of control request on its control port:

* :class:`~repro.core.protocol.ConnectRequest` — active open (Fig. 3):
  open an onward connection to the destination and relay both ways.
* :class:`~repro.core.protocol.BindRequest` — passive open (Fig. 4):
  bind a public port on behalf of the firewalled client; every peer
  connection arriving there is chained to the client through the inner
  server (``peer → outer → inner → client``).

The paper notes that binding the proxy to a privileged port requires
root and therefore *strengthens* security relative to the Globus 1.1
open-port-range workaround; we model the privilege boundary simply by
the relay owning its well-known ports.

Relay pumps pay CPU per forwarded chunk on the outer-server host and
contend for its cores, so concurrent relayed streams share the daemon
machine exactly as they would in deployment.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.config import DEFAULT_RELAY_CONFIG, RelayConfig
from repro.core.pump import relay_pump
from repro.obs import spans as _obs
from repro.obs import trace as _trace
from repro.obs.metrics import LogHistogram
from repro.core.protocol import (
    CONTROL_MSG_BYTES,
    REPLY_MSG_BYTES,
    BindReply,
    BindRequest,
    ConnectRequest,
    Reply,
    RelayTo,
)
from repro.simnet.host import Host
from repro.simnet.kernel import Event, Process
from repro.simnet.socket import (
    Address,
    Connection,
    ConnectionReset,
    ListenSocket,
    SocketError,
)

__all__ = ["OuterServer", "RelayStats"]


class RelayStats:
    """Forwarding counters for one simulated relay daemon.

    :meth:`snapshot` shares its key schema with the live plane's
    :meth:`repro.core.aio.relay.AioRelayStats.snapshot` — same names,
    same units — so the sim Table 2 path and ``bench_relay_live.py``
    emit directly comparable JSON.  (The sim plane forwards *frames*;
    they land under the shared ``chunks_relayed`` key.  The mux
    counters exist only so the schema matches; the sim data plane has
    no mux link and leaves them at zero.)
    """

    def __init__(self) -> None:
        self.active_connects = 0
        self.passive_binds = 0
        self.passive_chains = 0
        self.frames_relayed = 0
        self.bytes_relayed = 0
        self.failed_requests = 0
        #: Connections accepted on the nxport (inner server only).
        self.nxport_connections = 0
        self.mux_frames = 0
        self.mux_reconnects = 0
        self.mux_window_stalls = 0
        #: Adaptive wake-ups that drained the receive queue as one
        #: batch (the sim analogue of the live plane's coalesced
        #: scatter-gather flushes).
        self.coalesced_flushes = 0
        #: Coalesced-batch sizes (log2 buckets of bytes per flush).
        self.coalesce_bytes = LogHistogram()
        #: Per-wake-up forwarded-batch sizes (log2 buckets of bytes).
        self.chunk_bytes = LogHistogram()
        #: Per-pump lifetime byte totals (log2 buckets of bytes).
        self.chain_bytes = LogHistogram()
        #: Chain establishment latency (log2 buckets of simulated µs).
        self.chain_setup_us = LogHistogram()

    def snapshot(self) -> "dict[str, object]":
        """Plain-data view, key-compatible with the live plane."""
        return {
            "active_connects": self.active_connects,
            "passive_binds": self.passive_binds,
            "passive_chains": self.passive_chains,
            "chunks_relayed": self.frames_relayed,
            "bytes_relayed": self.bytes_relayed,
            "failed_requests": self.failed_requests,
            "nxport_connections": self.nxport_connections,
            "mux_frames": self.mux_frames,
            "mux_reconnects": self.mux_reconnects,
            "mux_window_stalls": self.mux_window_stalls,
            "coalesced_flushes": self.coalesced_flushes,
            "coalesce_bytes_hist": self.coalesce_bytes.to_dict(),
            "chunk_bytes_hist": self.chunk_bytes.to_dict(),
            "chain_bytes_hist": self.chain_bytes.to_dict(),
            "chain_setup_us_hist": self.chain_setup_us.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RelayStats connects={self.active_connects} "
            f"binds={self.passive_binds} chains={self.passive_chains} "
            f"frames={self.frames_relayed} bytes={self.bytes_relayed}>"
        )


class _BindRegistration:
    """Book-keeping for one NXProxyBind."""

    def __init__(
        self,
        client_host: str,
        client_port: int,
        inner_host: str,
        inner_port: int,
        public_sock: ListenSocket,
        tctx: "Optional[_trace.TraceContext]" = None,
    ) -> None:
        self.client_host = client_host
        self.client_port = client_port
        self.inner_host = inner_host
        self.inner_port = inner_port
        self.public_sock = public_sock
        #: Trace context adopted from the bind request; chains through
        #: this registration parent to it.
        self.tctx = tctx


class OuterServer:
    """The relay daemon running outside the firewall."""

    def __init__(self, host: Host, config: RelayConfig = DEFAULT_RELAY_CONFIG) -> None:
        config.validate()
        self.host = host
        self.sim = host.sim
        self.config = config
        self.stats = RelayStats()
        self._control_sock: Optional[ListenSocket] = None
        self._next_public_port = config.public_port_base
        self._accept_proc: Optional[Process] = None
        self.bind_registrations: list[_BindRegistration] = []

    @property
    def control_addr(self) -> Address:
        return Address(self.host.name, self.config.control_port)

    @property
    def running(self) -> bool:
        return self._control_sock is not None and not self._control_sock.closed

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "OuterServer":
        """Bind the control port and begin accepting; returns self."""
        if self.running:
            raise SocketError(f"outer server on {self.host.name} already running")
        self._control_sock = self.host.listen(
            self.config.control_port, backlog=self.config.backlog
        )
        self._accept_proc = self.sim.process(
            self._accept_loop(), name=f"outer-accept@{self.host.name}"
        )
        return self

    def stop(self) -> None:
        if self._control_sock is not None:
            self._control_sock.close()
        for reg in self.bind_registrations:
            reg.public_sock.close()

    # -- control plane ----------------------------------------------------------

    def _accept_loop(self) -> Iterator[Event]:
        assert self._control_sock is not None
        while True:
            try:
                conn = yield self._control_sock.accept()
            except SocketError:
                return  # stopped
            self.sim.process(
                self._session(conn), name=f"outer-session@{self.host.name}"
            )

    def _session(self, conn: Connection) -> Iterator[Event]:
        try:
            first = yield conn.recv()
        except ConnectionReset:
            return
        request = first.payload
        yield from self.host.execute(self.config.request_cpu)
        if isinstance(request, (ConnectRequest, BindRequest)):
            if self.config.secret is not None and request.secret != self.config.secret:
                self.stats.failed_requests += 1
                yield conn.send(
                    Reply(ok=False, error="authentication failed"),
                    nbytes=REPLY_MSG_BYTES,
                )
                conn.close()
                return
        if isinstance(request, ConnectRequest):
            yield from self._handle_connect(conn, request)
        elif isinstance(request, BindRequest):
            yield from self._handle_bind(conn, request)
        else:
            self.stats.failed_requests += 1
            yield conn.send(
                Reply(ok=False, error=f"bad request {type(request).__name__}"),
                nbytes=REPLY_MSG_BYTES,
            )
            conn.close()

    # -- active open (Fig. 3) ---------------------------------------------------

    def _handle_connect(self, conn: Connection, req: ConnectRequest) -> Iterator[Event]:
        t0 = self.sim.now
        try:
            onward = yield from self.host.connect((req.dest_host, req.dest_port))
        except SocketError as exc:
            self.stats.failed_requests += 1
            yield conn.send(Reply(ok=False, error=str(exc)), nbytes=REPLY_MSG_BYTES)
            conn.close()
            return
        self.stats.active_connects += 1
        yield conn.send(Reply(ok=True), nbytes=REPLY_MSG_BYTES)
        self.stats.chain_setup_us.record(int((self.sim.now - t0) * 1e6))
        ctx = _trace.accept(req.tctx)
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_span("relay", "chain_setup", t0, self.sim.now,
                         track=f"outer:{self.host.name}", kind="active",
                         dest=f"{req.dest_host}:{req.dest_port}",
                         **_trace.span_args(ctx))
        self._start_pumps(conn, onward)

    # -- passive open (Fig. 4) ----------------------------------------------------

    def _handle_bind(self, conn: Connection, req: BindRequest) -> Iterator[Event]:
        try:
            public_sock = self.host.listen(
                self._allocate_public_port(), backlog=self.config.backlog
            )
        except SocketError as exc:
            self.stats.failed_requests += 1
            yield conn.send(
                BindReply(ok=False, error=str(exc)), nbytes=REPLY_MSG_BYTES
            )
            conn.close()
            return
        reg = _BindRegistration(
            req.client_host, req.client_port, req.inner_host, req.inner_port,
            public_sock, tctx=_trace.accept(req.tctx),
        )
        self.bind_registrations.append(reg)
        self.stats.passive_binds += 1
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_instant("relay", "bind", self.sim.now,
                            track=f"outer:{self.host.name}",
                            public_port=public_sock.port,
                            client=f"{req.client_host}:{req.client_port}",
                            **_trace.span_args(reg.tctx))
        yield conn.send(
            BindReply(ok=True, proxy_host=self.host.name, proxy_port=public_sock.port),
            nbytes=REPLY_MSG_BYTES,
        )
        self.sim.process(
            self._public_accept_loop(reg),
            name=f"outer-public:{public_sock.port}@{self.host.name}",
        )
        # The control connection's lifetime scopes the bind: when the
        # client closes it (listener closed), the public port dies.
        try:
            while True:
                yield conn.recv()
        except ConnectionReset:
            public_sock.close()
            if reg in self.bind_registrations:
                self.bind_registrations.remove(reg)

    def _allocate_public_port(self) -> int:
        while self.host.is_listening(self._next_public_port):
            self._next_public_port += 1
        port = self._next_public_port
        self._next_public_port += 1
        return port

    def _public_accept_loop(self, reg: _BindRegistration) -> Iterator[Event]:
        while True:
            try:
                peer = yield reg.public_sock.accept()
            except SocketError:
                return  # bind closed
            self.sim.process(
                self._passive_chain(peer, reg),
                name=f"outer-chain@{self.host.name}",
            )

    def _passive_chain(self, peer: Connection, reg: _BindRegistration) -> Iterator[Event]:
        """peer → outer → inner → client (Fig. 4 steps 4-1, 4-2)."""
        t0 = self.sim.now
        chain_ctx = _trace.child(reg.tctx)
        yield from self.host.execute(self.config.request_cpu)
        try:
            inner = yield from self.host.connect((reg.inner_host, reg.inner_port))
        except SocketError:
            self.stats.failed_requests += 1
            peer.close()
            return
        yield inner.send(
            RelayTo(
                reg.client_host, reg.client_port,
                tctx=chain_ctx.to_wire() if chain_ctx is not None else None,
            ),
            nbytes=CONTROL_MSG_BYTES,
        )
        try:
            reply_msg = yield inner.recv()
        except ConnectionReset:
            self.stats.failed_requests += 1
            peer.close()
            return
        reply: Reply = reply_msg.payload
        if not reply.ok:
            self.stats.failed_requests += 1
            peer.close()
            inner.close()
            return
        self.stats.passive_chains += 1
        self.stats.chain_setup_us.record(int((self.sim.now - t0) * 1e6))
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_span("relay", "chain_setup", t0, self.sim.now,
                         track=f"outer:{self.host.name}", kind="passive",
                         client=f"{reg.client_host}:{reg.client_port}",
                         **_trace.span_args(chain_ctx))
        self._start_pumps(peer, inner)

    # -- data plane -----------------------------------------------------------------

    def _start_pumps(self, a: Connection, b: Connection) -> None:
        self.sim.process(self._pump(a, b), name=f"pump@{self.host.name}")
        self.sim.process(self._pump(b, a), name=f"pump@{self.host.name}")

    def _pump(self, src: Connection, dst: Connection) -> Iterator[Event]:
        """Forward chunks src→dst until either side goes away (see
        :func:`repro.core.pump.relay_pump` for the cost model)."""
        yield from relay_pump(self.host, self.config, self.stats, src, dst)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self.running else "stopped"
        return f"<OuterServer {self.control_addr} {state}>"
