"""Analytic model of relay chains.

Predicts the one-way transfer time of a message through a chain of
wire legs and relay stages under chunk pipelining.  Used three ways:

* property tests cross-check the discrete-event simulation against
  this closed form (they must agree — same physics, two derivations);
* the Table 2 calibration inverts it to pick relay CPU costs;
* benchmarks report "predicted vs simulated" so a reader can see the
  pipeline model at work.

Model: a message of ``B`` bytes is carved into ``n`` chunks.  Each
pipeline *stage* is either a wire leg (time per chunk = chunk/bandwidth,
plus a one-off latency) or a relay (time per chunk = per-chunk CPU +
per-byte CPU).  With store-and-forward pipelining, the finish time is::

    sum(latencies) + sum(stage_time of first chunk) +
    (n - 1) * max(stage_time)        # the bottleneck stage

which is exact for equal-size chunks and FIFO stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["WireLeg", "RelayStage", "ChainModel"]


@dataclass(frozen=True, slots=True)
class WireLeg:
    """A sequence of links collapsed into one pipeline stage.

    ``latency`` is the summed one-way propagation; ``bandwidth`` the
    bottleneck serialization rate along the leg.  Collapsing is valid
    when intra-leg links are much faster than the stage bottlenecks,
    which holds for the testbed (LAN hops vs. relay CPU / WAN).
    """

    latency: float
    bandwidth: float
    #: Number of physical links in the leg (each serializes the chunk).
    nlinks: int = 1

    def stage_time(self, chunk_bytes: int) -> float:
        return self.nlinks * chunk_bytes / self.bandwidth


@dataclass(frozen=True, slots=True)
class RelayStage:
    """One relay daemon traversal.

    ``per_chunk_cpu``/``per_byte_cpu`` occupy the relay (throughput
    bound); ``delay`` is the non-occupying forwarding latency chunks
    pipeline through (it shifts the whole train once, like wire
    latency).
    """

    per_chunk_cpu: float
    per_byte_cpu: float = 0.0
    #: Relative CPU speed of the relay host.
    cpu_speed: float = 1.0
    #: Non-occupying per-chunk forwarding delay.
    delay: float = 0.0

    def stage_time(self, chunk_bytes: int) -> float:
        return (self.per_chunk_cpu + self.per_byte_cpu * chunk_bytes) / self.cpu_speed


@dataclass(frozen=True)
class ChainModel:
    """An alternating sequence of wire legs and relay stages."""

    stages: Sequence["WireLeg | RelayStage"]
    chunk_bytes: int
    #: Fixed endpoint costs added once per message (send + recv CPU).
    endpoint_overhead: float = 0.0
    #: Per-chunk frame header bytes on the wire.
    header_bytes: int = 0

    @property
    def relay_count(self) -> int:
        return sum(1 for s in self.stages if isinstance(s, RelayStage))

    def chunks_for(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.chunk_bytes))

    def one_way_time(self, nbytes: int) -> float:
        """Predicted delivery time of an ``nbytes`` message."""
        if nbytes <= 0:
            raise ValueError(f"message size must be positive, got {nbytes}")
        n = self.chunks_for(nbytes)
        # Wire stages carry the frame header too.
        wire_chunk = min(self.chunk_bytes, nbytes) + self.header_bytes
        total_latency = sum(
            s.latency if isinstance(s, WireLeg) else s.delay for s in self.stages
        )
        times = self._stage_times(wire_chunk, min(self.chunk_bytes, nbytes))
        first_chunk = sum(times)
        bottleneck = max(times) if times else 0.0
        return self.endpoint_overhead + total_latency + first_chunk + (n - 1) * bottleneck

    def _stage_times(self, wire_chunk: int, relay_chunk: int) -> list[float]:
        """Per-chunk time of each pipeline stage.

        A multi-link wire leg is ``nlinks`` store-and-forward stages
        (chunks pipeline across the hops), not one stage of summed
        serialization.
        """
        times: list[float] = []
        for s in self.stages:
            if isinstance(s, WireLeg):
                times.extend([wire_chunk / s.bandwidth] * s.nlinks)
            else:
                times.append(s.stage_time(relay_chunk))
        return times

    def bandwidth(self, nbytes: int) -> float:
        """Effective one-way bandwidth for a message of ``nbytes``."""
        return nbytes / self.one_way_time(nbytes)

    def asymptotic_bandwidth(self) -> float:
        """Throughput limit as the message grows: the bottleneck stage."""
        times = self._stage_times(
            self.chunk_bytes + self.header_bytes, self.chunk_bytes
        )
        return self.chunk_bytes / max(times)

    def ping_pong_latency(self, nbytes: int = 16) -> float:
        """Half the round trip of a small message — how Table 2's
        'latency' column is measured."""
        return self.one_way_time(nbytes)
