"""Relay tuning parameters.

One :class:`RelayConfig` is shared by the outer server, the inner
server and the client libraries of a deployment.  The CPU costs model a
*user-level* relay daemon on a late-1990s server (select wakeup, read,
write, context switch per forwarded chunk) and are the quantities the
Table 2 calibration fits; see ``repro.bench.calibrate`` for how the
defaults were chosen and EXPERIMENTS.md for the resulting numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["RelayConfig", "DEFAULT_RELAY_CONFIG"]


@dataclass(frozen=True, slots=True)
class RelayConfig:
    """Deployment-wide relay parameters (times in seconds)."""

    #: Port the outer server listens on for control connections.
    control_port: int = 7000
    #: Port the inner server listens on — the *nxport*, the single
    #: inbound firewall hole of the whole mechanism.
    nxport: int = 7100
    #: First public port the outer server hands out for binds.
    public_port_base: int = 7500
    #: Relay read-buffer granularity: one forwarded chunk.
    chunk_bytes: int = 1024
    #: CPU cost per forwarded chunk, on a speed-1.0 host.  This
    #: *occupies* a relay core and therefore bounds per-stream
    #: throughput (the order-of-magnitude LAN bandwidth drop of
    #: Table 2) and creates contention between concurrent streams.
    per_chunk_cpu: float = 3.0e-3
    #: CPU cost per forwarded byte (buffer copies).
    per_byte_cpu: float = 0.20e-6
    #: Additional *non-occupying* forwarding delay per chunk: select
    #: wakeup, scheduling, protocol stack traversal on the relay box.
    #: Pure latency — concurrent chunks pipeline through it.  Two
    #: relay traversals of (cpu + delay) reproduce the paper's ≈25 ms
    #: proxied latency.
    per_chunk_delay: float = 9.5e-3
    #: CPU cost of handling one control request (connect/bind/relay-to).
    request_cpu: float = 2.0e-3
    #: Backlog for relay listen sockets.
    backlog: int = 256
    #: Adaptive-chunk mode (the live data plane's fixed-vs-adaptive
    #: ablation, on the simulator): the relay pump coalesces frames
    #: already queued on the source socket into one read wake-up,
    #: growing its read budget from ``chunk_bytes`` toward
    #: ``max_chunk_bytes`` — paying ``per_chunk_cpu`` once per
    #: *budget*, not once per frame.  ``per_byte_cpu`` is unaffected
    #: (the bytes are still copied).
    adaptive_chunking: bool = False
    #: Read-budget ceiling for adaptive chunking.
    max_chunk_bytes: int = 65536
    #: Optional shared secret for control requests.  When set, the
    #: outer server refuses connect/bind requests that do not carry
    #: it — hardening the publicly reachable control port (the paper
    #: leans on privileged-port binding for the same purpose; a
    #: credential works for unprivileged deployments too).
    secret: "str | None" = None

    def with_overrides(self, **kwargs) -> "RelayConfig":
        """A copy with some fields replaced (for ablation sweeps)."""
        return replace(self, **kwargs)

    def chunk_cost(self, nbytes: int) -> float:
        """Relay CPU to forward one chunk of ``nbytes`` payload."""
        return self.per_chunk_cpu + self.per_byte_cpu * nbytes

    def chunks_for(self, nbytes: int) -> int:
        """Chunks a message of ``nbytes`` is carved into."""
        return max(1, -(-nbytes // self.chunk_bytes))

    def validate(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if self.max_chunk_bytes < self.chunk_bytes:
            raise ValueError(
                f"max_chunk_bytes ({self.max_chunk_bytes}) must be >= "
                f"chunk_bytes ({self.chunk_bytes})"
            )
        if min(self.per_chunk_cpu, self.per_byte_cpu, self.request_cpu,
               self.per_chunk_delay) < 0:
            raise ValueError("CPU costs and delays must be non-negative")
        ports = (self.control_port, self.nxport, self.public_port_base)
        if len(set(ports)) != 3:
            raise ValueError(f"relay ports must be distinct, got {ports}")
        for p in ports:
            if not (1 <= p <= 65535):
                raise ValueError(f"invalid port {p}")


#: The calibrated defaults used throughout the benchmarks.
DEFAULT_RELAY_CONFIG = RelayConfig()
