"""The relay data path, shared by the outer and inner servers.

One pump per connection direction: receive a chunk, spend relay CPU
(occupying a core on the relay host — this is the per-stream
throughput bound and the cross-stream contention), then forward after
the non-occupying scheduling delay.  Chunks of one direction all carry
the same delay, and the transport's per-connection send lock is FIFO,
so pipelined forwarding preserves order.

Close propagation is drain-aware: when the source side resets, chunks
already inside the forwarding delay are delivered before the
destination is closed — otherwise a sender that writes-then-closes
(the normal last-message pattern) would lose its tail through the
relay.

Adaptive chunking (``config.adaptive_chunking``) models the live data
plane's growing read buffers: after a blocking receive, any frames
*already queued* on the source socket are drained in the same wake-up
(one ``per_chunk_cpu`` charge for the whole batch instead of one per
frame), and the read budget doubles from ``chunk_bytes`` toward
``max_chunk_bytes`` whenever a wake-up fills it.  Frames are still
forwarded individually — framing and ordering are untouched; only the
relay's wake-up/CPU granularity changes, which is exactly what a
bigger ``read()`` buys a real user-level relay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.obs import spans as _obs
from repro.obs import trace as _trace
from repro.simnet.host import Host
from repro.simnet.kernel import Event
from repro.simnet.socket import Connection, ConnectionReset

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import RelayConfig
    from repro.core.outer import RelayStats

__all__ = ["relay_pump"]


def relay_pump(
    host: Host,
    config: "RelayConfig",
    stats: "RelayStats",
    src: Connection,
    dst: Connection,
) -> Iterator[Event]:
    """Generator: forward chunks ``src -> dst`` until either side dies."""
    sim = host.sim
    outstanding = 0
    drained: Optional[Event] = None
    read_budget = config.chunk_bytes  # adaptive read size (grows)
    t_start = sim.now
    pump_frames = 0
    pump_bytes = 0

    def _finish() -> None:
        stats.chain_bytes.record(pump_bytes)
        rec = _obs.RECORDER
        if rec is not None:
            rec.sim_span("relay", "pump", t_start, sim.now,
                         track=f"relay:{host.name}",
                         frames=pump_frames, bytes=pump_bytes)

    def _forward(payload, nbytes: int) -> Iterator[Event]:
        nonlocal outstanding, drained
        try:
            if config.per_chunk_delay > 0:
                yield sim.timeout(config.per_chunk_delay)
            if not dst.closed:
                yield dst.send(payload, nbytes=nbytes)
        finally:
            outstanding -= 1
            if outstanding == 0 and drained is not None:
                drained.succeed()
                drained = None

    while True:
        try:
            msg = yield src.recv()
        except ConnectionReset:
            # Drain in-flight forwards before closing the far side.
            if outstanding > 0:
                drained = sim.event()
                yield drained
            dst.close()
            _finish()
            return
        batch = [msg]
        batch_bytes = msg.nbytes
        if config.adaptive_chunking:
            # One wake-up drains whatever already sits in the receive
            # queue, up to the current read budget.
            while batch_bytes < read_budget and src.rx_pending > 0:
                extra = src.try_recv()
                if extra is None:
                    break
                batch.append(extra)
                batch_bytes += extra.nbytes
            if batch_bytes >= read_budget:
                read_budget = min(read_budget * 2, config.max_chunk_bytes)
            if len(batch) > 1:
                # This wake-up coalesced queued frames into one
                # read+forward — the sim analogue of a scatter-gather
                # flush on the live plane.
                stats.coalesced_flushes += 1
                stats.coalesce_bytes.record(batch_bytes)
        # Occupying CPU: one read+copy+write wake-up for the batch.
        yield from host.execute(
            config.per_chunk_cpu + config.per_byte_cpu * batch_bytes
        )
        stats.frames_relayed += len(batch)
        stats.bytes_relayed += batch_bytes
        stats.chunk_bytes.record(batch_bytes)
        pump_frames += len(batch)
        pump_bytes += batch_bytes
        if _trace.ENABLED:
            # Per-trace byte attribution: which job's traffic paid
            # this relay hop.  Tagged frames only exist when causal
            # tracing is on, so untagged runs never take this branch.
            rec = _obs.RECORDER
            if rec is not None:
                for m in batch:
                    wire = getattr(m.payload, "tctx", None)
                    if wire is not None:
                        rec.count_pair(
                            "relay.trace_bytes",
                            wire.split("/", 1)[0], m.nbytes,
                        )
        if dst.closed:
            src.close()
            _finish()
            return
        for m in batch:
            outstanding += 1
            sim.process(_forward(m.payload, m.nbytes), name=f"fwd@{host.name}")
