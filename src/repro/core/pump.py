"""The relay data path, shared by the outer and inner servers.

One pump per connection direction: receive a chunk, spend relay CPU
(occupying a core on the relay host — this is the per-stream
throughput bound and the cross-stream contention), then forward after
the non-occupying scheduling delay.  Chunks of one direction all carry
the same delay, and the transport's per-connection send lock is FIFO,
so pipelined forwarding preserves order.

Close propagation is drain-aware: when the source side resets, chunks
already inside the forwarding delay are delivered before the
destination is closed — otherwise a sender that writes-then-closes
(the normal last-message pattern) would lose its tail through the
relay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.simnet.host import Host
from repro.simnet.kernel import Event
from repro.simnet.socket import Connection, ConnectionReset

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import RelayConfig
    from repro.core.outer import RelayStats

__all__ = ["relay_pump"]


def relay_pump(
    host: Host,
    config: "RelayConfig",
    stats: "RelayStats",
    src: Connection,
    dst: Connection,
) -> Iterator[Event]:
    """Generator: forward chunks ``src -> dst`` until either side dies."""
    sim = host.sim
    outstanding = 0
    drained: Optional[Event] = None

    def _forward(payload, nbytes: int) -> Iterator[Event]:
        nonlocal outstanding, drained
        try:
            if config.per_chunk_delay > 0:
                yield sim.timeout(config.per_chunk_delay)
            if not dst.closed:
                yield dst.send(payload, nbytes=nbytes)
        finally:
            outstanding -= 1
            if outstanding == 0 and drained is not None:
                drained.succeed()
                drained = None

    while True:
        try:
            msg = yield src.recv()
        except ConnectionReset:
            # Drain in-flight forwards before closing the far side.
            if outstanding > 0:
                drained = sim.event()
                yield drained
            dst.close()
            return
        # Occupying CPU: read+copy+write on the relay box.
        yield from host.execute(config.chunk_cost(msg.nbytes))
        stats.frames_relayed += 1
        stats.bytes_relayed += msg.nbytes
        if dst.closed:
            src.close()
            return
        outstanding += 1
        sim.process(_forward(msg.payload, msg.nbytes), name=f"fwd@{host.name}")
