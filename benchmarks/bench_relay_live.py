"""Live relay microbenchmark: loopback throughput + RTT, fixed vs
adaptive pump, legacy vs mux passive plane.

Seeds the repo's perf trajectory (``BENCH_relay.json``): every later
data-plane change gets judged against these numbers.  Three probes:

* **single-chain active throughput** — one relayed stream pushing
  bulk bytes through the outer server (Fig. 3 path), measured with
  the full seed data plane (fixed 4 KB reads, drain per write, 64 KB
  stream limits, untuned sockets — ``pump_mode="fixed"``) and the
  adaptive plane (4 KB → 256 KB growth, drain on high-water only,
  ``TCP_NODELAY``, raised buffer limits).  Traffic is generated and
  sunk by *blocking-socket OS threads* (``sendall``/``recv`` release
  the GIL), so the event loop's only work is the relay pump itself —
  asyncio endpoints would share the loop with the relay and mask the
  difference under test.
* **round-trip latency** — 64-byte echo ping-pong through the relay;
  dominated by per-chunk scheduling and Nagle behaviour, so it checks
  that the adaptive plane didn't trade latency for bandwidth.
* **16-chain passive aggregate** — sixteen concurrent passive chains
  (Fig. 4 path), legacy connection-per-chain vs the frame-multiplexed
  single-pinhole link; also asserts the mux plane's defining
  invariant (``nxport_connections == 1``).

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_relay_live.py --quick

or in full to (re)generate ``BENCH_relay.json``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import socket
import statistics
import sys
import time

from repro.bench.results import bench_arg_parser, bench_meta, emit_results
from repro.core.aio import AioInnerServer, AioOuterServer, AioProxyClient
from repro.core.aio.pump import STREAM_LIMIT, tune_stream
from repro.core.aio.streams import recv_striped, send_striped

MB = 1024 * 1024


async def _start(pump_mode: str, mux: bool):
    outer = await AioOuterServer(pump_mode=pump_mode, mux=mux).start()
    inner = await AioInnerServer(pump_mode=pump_mode).start()
    client = AioProxyClient(
        outer_addr=("127.0.0.1", outer.control_port),
        inner_addr=("127.0.0.1", inner.nxport),
    )
    return outer, inner, client


def _sink_thread(lsock: socket.socket, out: dict) -> None:
    """Blocking sink: count inbound bytes, reply with the count on EOF."""
    conn, _ = lsock.accept()
    total = 0
    while True:
        data = conn.recv(1 << 20)
        if not data:
            break
        total += len(data)
    conn.sendall(b"%d\n" % total)
    conn.close()
    out["total"] = total


def _client_thread(
    control_port: int, sink_port: int, nbytes: int, out: dict
) -> None:
    """Blocking client: JSON ``connect`` handshake, then bulk sendall.

    Times from first payload byte to the sink's byte-count ack, i.e.
    full delivery through the relay, not just the local send buffer.
    """
    s = socket.create_connection(("127.0.0.1", control_port))
    req = {"op": "connect", "host": "127.0.0.1", "port": sink_port}
    s.sendall(json.dumps(req).encode() + b"\n")
    reply = b""
    while not reply.endswith(b"\n"):
        reply += s.recv(4096)
    assert json.loads(reply).get("ok"), reply
    payload = b"\xa5" * MB
    t0 = time.perf_counter()
    for _ in range(nbytes // MB):
        s.sendall(payload)
    s.shutdown(socket.SHUT_WR)
    ack = b""
    while not ack.endswith(b"\n"):
        data = s.recv(4096)
        if not data:
            break
        ack += data
    out["elapsed"] = time.perf_counter() - t0
    out["acked"] = int(ack)
    s.close()


async def single_chain_throughput(
    pump_mode: str, nbytes: int, repeats: int = 3
) -> float:
    """One-way MB/s through an active (Fig. 3) relayed connection.

    Endpoints run in OS threads on blocking sockets so the asyncio
    loop carries only the relay's own pump — the quantity under test.
    Best-of-``repeats``: loopback microbenchmarks are dominated by
    scheduler noise in their worst iterations, so the max is the
    stable estimator of what the data plane can do.
    """
    outer = await AioOuterServer(pump_mode=pump_mode).start()
    best = 0.0
    try:
        for _ in range(repeats):
            lsock = socket.socket()
            lsock.bind(("127.0.0.1", 0))
            lsock.listen(1)
            sink_port = lsock.getsockname()[1]
            sink_out: dict = {}
            cli_out: dict = {}
            await asyncio.gather(
                asyncio.to_thread(_sink_thread, lsock, sink_out),
                asyncio.to_thread(
                    _client_thread, outer.control_port, sink_port, nbytes, cli_out
                ),
            )
            lsock.close()
            assert cli_out["acked"] == nbytes, (cli_out, nbytes)
            best = max(best, nbytes / MB / cli_out["elapsed"])
        return best
    finally:
        await outer.stop()


async def relay_rtt(pump_mode: str, iters: int) -> dict:
    """64-byte echo round-trips through the relay, microseconds."""
    outer, inner, client = await _start(pump_mode, mux=True)

    async def echo(reader, writer):
        while True:
            data = await reader.read(4096)
            if not data:
                break
            writer.write(data)
            await writer.drain()
        writer.close()

    echo_srv = await asyncio.start_server(echo, "127.0.0.1", 0)
    echo_port = echo_srv.sockets[0].getsockname()[1]
    try:
        reader, writer = await client.connect("127.0.0.1", echo_port)
        probe = b"\x5a" * 64
        samples = []
        for _ in range(iters):
            t0 = time.perf_counter()
            writer.write(probe)
            await writer.drain()
            await reader.readexactly(64)
            samples.append((time.perf_counter() - t0) * 1e6)
        writer.close()
        samples.sort()
        return {
            "mean_us": round(statistics.fmean(samples), 1),
            "p50_us": round(samples[len(samples) // 2], 1),
            "p95_us": round(samples[int(len(samples) * 0.95)], 1),
        }
    finally:
        echo_srv.close()
        await outer.stop()
        await inner.stop()


async def passive_concurrent_throughput(
    mux: bool, pump_mode: str, chains: int, nbytes_per_chain: int
) -> dict:
    """Aggregate MB/s over N concurrent passive (Fig. 4) chains."""
    outer, inner, client = await _start(pump_mode, mux=mux)
    try:
        listener = await client.bind()
        host, port = listener.proxy_addr
        received = {"total": 0}
        done = asyncio.Event()

        async def drain_accepted():
            async def drain_one(r, w):
                while True:
                    data = await r.read(1 << 20)
                    if not data:
                        break
                    received["total"] += len(data)
                w.close()
                if received["total"] >= chains * nbytes_per_chain:
                    done.set()

            while True:
                r, w = await listener.accept()
                asyncio.ensure_future(drain_one(r, w))

        accept_task = asyncio.ensure_future(drain_accepted())

        async def one_peer():
            r, w = await asyncio.open_connection(host, port)
            payload = b"\x3c" * min(MB, nbytes_per_chain)
            sent = 0
            while sent < nbytes_per_chain:
                w.write(payload)
                await w.drain()
                sent += len(payload)
            w.write_eof()
            await r.read(1)  # wait for relay close propagation
            w.close()

        t0 = time.perf_counter()
        await asyncio.gather(*[one_peer() for _ in range(chains)])
        await asyncio.wait_for(done.wait(), 60)
        elapsed = time.perf_counter() - t0
        accept_task.cancel()
        await listener.close()
        return {
            "mb_per_s": round(chains * nbytes_per_chain / MB / elapsed, 1),
            "nxport_connections": inner.stats.nxport_connections,
        }
    finally:
        await outer.stop()
        await inner.stop()


#: One-way latency of the emulated WAN hop in the stripe sweep — the
#: paper's RWCP↔outside link (3.5 ms, same figure the sim topology
#: uses).  Striping is a wide-area technique: on raw loopback there is
#: no window×RTT bound for parallel streams to beat, so the sweep
#: inserts the latency the technique exists for.
WAN_DELAY_S = 3.5e-3


async def _wan_pipe(reader, writer, delay: float) -> None:
    """Forward one direction, delaying each chunk by ``delay`` seconds
    (latency emulation, not rate limiting: chunks pipeline)."""
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue()

    async def flush() -> None:
        try:
            while True:
                item = await queue.get()
                if item is None:
                    break
                due, data = item
                lag = due - loop.time()
                if lag > 0:
                    await asyncio.sleep(lag)
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        try:
            writer.close()
        except Exception:
            pass

    flusher = asyncio.ensure_future(flush())
    try:
        while True:
            data = await reader.read(1 << 16)
            if not data:
                break
            queue.put_nowait((loop.time() + delay, data))
    except (ConnectionError, OSError):
        pass
    queue.put_nowait(None)
    await flusher


def _stripe_sink_thread(
    lsock: socket.socket, wan_sock: socket.socket, out: dict
) -> None:
    """Own event loop: accept k relayed streams through an emulated
    WAN hop, reassemble the stripe."""

    async def main() -> None:
        queue: asyncio.Queue = asyncio.Queue()

        async def on_conn(reader, writer):
            await queue.put((reader, writer))

        server = await asyncio.start_server(
            on_conn, sock=lsock, limit=STREAM_LIMIT
        )
        sink_port = lsock.getsockname()[1]
        wan_tasks: set = set()

        async def wan_conn(reader, writer):
            wan_tasks.add(asyncio.current_task())
            try:
                onward_r, onward_w = await asyncio.open_connection(
                    "127.0.0.1", sink_port, limit=STREAM_LIMIT
                )
                tune_stream(writer)
                tune_stream(onward_w)
                await asyncio.gather(
                    _wan_pipe(reader, onward_w, WAN_DELAY_S),
                    _wan_pipe(onward_r, writer, WAN_DELAY_S),
                )
            finally:
                wan_tasks.discard(asyncio.current_task())

        wan_server = await asyncio.start_server(
            wan_conn, sock=wan_sock, limit=STREAM_LIMIT
        )
        data, report = await recv_striped(queue.get)
        out["sha256"] = hashlib.sha256(data).hexdigest()
        out["report"] = report
        # Keep the emulator alive until its delay queues flush (the
        # final restart marker must reach the sender) and the sender's
        # closes propagate back through — otherwise the loop teardown
        # would cancel the mark mid-delay and strand the send thread.
        while wan_tasks:
            await asyncio.gather(*list(wan_tasks), return_exceptions=True)
        for srv in (server, wan_server):
            srv.close()
            await srv.wait_closed()

    asyncio.run(main())


def _stripe_send_thread(
    control_port: int, sink_port: int, payload: bytes,
    k: int, block: int, window: int, out: dict,
) -> None:
    """Own event loop: dial k relay chains, send one striped transfer."""

    async def dial():
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", control_port, limit=STREAM_LIMIT
        )
        tune_stream(writer)
        req = {"op": "connect", "host": "127.0.0.1", "port": sink_port}
        writer.write(json.dumps(req).encode() + b"\n")
        await writer.drain()
        reply = json.loads(await reader.readline())
        assert reply.get("ok"), reply
        return reader, writer

    async def main() -> None:
        t0 = time.perf_counter()
        out["report"] = await send_striped(
            dial, payload, streams=k, block_bytes=block, window_blocks=window
        )
        out["elapsed"] = time.perf_counter() - t0

    asyncio.run(main())


async def parallel_stream_sweep(
    nbytes: int, ks=(1, 2, 4, 8), repeats: int = 2,
    block: int = 128 * 1024, window: int = 4,
) -> dict:
    """GridFTP-style striping: MB/s of one ``nbytes`` transfer split
    over k relay chains crossing an emulated 3.5 ms WAN hop.

    One stream carries at most ``window × block`` bytes above the
    sink's restart marker, so a single stream is bounded by
    window/RTT — the wide-area regime striping exists for (each
    stream's window ratchets independently; the aggregate scales with
    k until the single relay core saturates).  Endpoints and the WAN
    emulator run in their own threads/event loops so the benched loop
    carries only the relay; every transfer is hash-verified end to
    end.
    """
    payload = bytes(bytearray(range(256)) * (nbytes // 256))
    want = hashlib.sha256(payload).hexdigest()
    sweep: dict = {}
    for k in ks:
        outer = await AioOuterServer(pump_mode="adaptive").start()
        try:
            best = 0.0
            for _ in range(repeats):
                lsock = socket.socket()
                lsock.bind(("127.0.0.1", 0))
                lsock.listen(16)
                wan_sock = socket.socket()
                wan_sock.bind(("127.0.0.1", 0))
                wan_sock.listen(16)
                wan_port = wan_sock.getsockname()[1]
                sink_out: dict = {}
                send_out: dict = {}
                await asyncio.gather(
                    asyncio.to_thread(
                        _stripe_sink_thread, lsock, wan_sock, sink_out
                    ),
                    asyncio.to_thread(
                        _stripe_send_thread, outer.control_port, wan_port,
                        payload, k, block, window, send_out,
                    ),
                )
                assert sink_out["sha256"] == want, "stripe corruption"
                assert send_out["report"]["reconnects"] == 0
                best = max(best, nbytes / MB / send_out["elapsed"])
            sweep[f"k{k}"] = {"mb_per_s": round(best, 1)}
            print(f"parallel streams    : k={k}  {best:8.1f} MB/s")
        finally:
            await outer.stop()
    if "k1" in sweep and "k4" in sweep:
        sweep["k4_vs_k1_speedup"] = round(
            sweep["k4"]["mb_per_s"] / sweep["k1"]["mb_per_s"], 2
        )
    sweep["block_bytes"] = block
    sweep["window_blocks"] = window
    sweep["wan_delay_ms"] = WAN_DELAY_S * 1e3
    return sweep


async def run_suite(quick: bool, streams: "int | None" = None) -> dict:
    bulk = 4 * MB if quick else 16 * MB
    rtt_iters = 100 if quick else 400
    chains = 16
    per_chain = MB // 2 if quick else 2 * MB

    results: dict = {
        "meta": bench_meta(
            quick=quick,
            bulk_bytes=bulk,
            chains=chains,
            per_chain_bytes=per_chain,
        )
    }

    repeats = 2 if quick else 3
    fixed_bw = await single_chain_throughput("fixed", bulk, repeats)
    adaptive_bw = await single_chain_throughput("adaptive", bulk, repeats)
    results["single_chain_active"] = {
        "seed_fixed_4k_mb_per_s": round(fixed_bw, 1),
        "adaptive_mb_per_s": round(adaptive_bw, 1),
        "speedup": round(adaptive_bw / fixed_bw, 2),
    }
    print(f"single-chain active : fixed {fixed_bw:8.1f} MB/s   "
          f"adaptive {adaptive_bw:8.1f} MB/s   "
          f"({adaptive_bw / fixed_bw:.2f}x)")

    fixed_rtt = await relay_rtt("fixed", rtt_iters)
    adaptive_rtt = await relay_rtt("adaptive", rtt_iters)
    results["rtt_64b"] = {"fixed": fixed_rtt, "adaptive": adaptive_rtt}
    print(f"relay RTT (64 B)    : fixed p50 {fixed_rtt['p50_us']:7.1f} us   "
          f"adaptive p50 {adaptive_rtt['p50_us']:7.1f} us")

    # Best-of like the other throughput sections: a single 16-chain
    # shot has enough scheduler noise on a 1-core box to swing the
    # legacy/mux ratio by >10%.
    legacy = muxed = None
    for _ in range(repeats):
        leg = await passive_concurrent_throughput(False, "fixed", chains, per_chain)
        mux = await passive_concurrent_throughput(True, "adaptive", chains, per_chain)
        if legacy is None or leg["mb_per_s"] > legacy["mb_per_s"]:
            legacy = leg
        if muxed is None or mux["mb_per_s"] > muxed["mb_per_s"]:
            muxed = mux
    assert muxed["nxport_connections"] == 1, muxed
    assert legacy["nxport_connections"] == chains, legacy
    results["passive_16chain"] = {
        "legacy_per_chain_conns": legacy,
        "mux_single_conn": muxed,
        "speedup": round(muxed["mb_per_s"] / legacy["mb_per_s"], 2),
    }
    print(f"16-chain passive    : legacy {legacy['mb_per_s']:8.1f} MB/s "
          f"({legacy['nxport_connections']} nxport conns)   "
          f"mux {muxed['mb_per_s']:8.1f} MB/s "
          f"({muxed['nxport_connections']} nxport conn)")

    stripe_bytes = 4 * MB if quick else 16 * MB
    ks = (streams,) if streams else (1, 2, 4, 8)
    results["parallel_streams"] = await parallel_stream_sweep(
        stripe_bytes, ks=ks, repeats=2 if quick else 3
    )
    return results


def main(argv=None) -> int:
    parser = bench_arg_parser(
        __doc__, "BENCH_relay.json", quick_help="small transfers (CI smoke run)"
    )
    parser.add_argument("--streams", type=int, default=None,
                        help="run the parallel-stream sweep at this single "
                        "k only (CI smoke; default: sweep k=1,2,4,8)")
    args = parser.parse_args(argv)
    results = asyncio.run(run_suite(args.quick, args.streams))

    speedup = results["single_chain_active"]["speedup"]
    if speedup < 2.0 and not args.quick:
        print(f"WARNING: adaptive single-chain speedup {speedup:.2f}x "
              "is below the 2x acceptance bar", file=sys.stderr)
    stripe = results["parallel_streams"].get("k4_vs_k1_speedup")
    if stripe is not None and stripe < 1.8 and not args.quick:
        print(f"WARNING: k=4 striping speedup {stripe:.2f}x is below the "
              "1.8x acceptance bar", file=sys.stderr)

    emit_results(results, args.out, "BENCH_relay.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
