"""Shared fixtures for the benchmark suite.

The Table 4/5/6 targets all consume the same set of knapsack runs;
they are produced once per session here.  ``--benchmark-only`` runs
print each regenerated table so the output can be compared against
the paper (and against EXPERIMENTS.md) by eye.
"""

import pytest

from repro.bench.table4 import Table4Config, run_table4


@pytest.fixture(scope="session")
def table4_results():
    """The full Table 4/5/6 run set (sequential + five systems)."""
    return run_table4(Table4Config())


def once(benchmark, fn):
    """Run a heavy regeneration exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
