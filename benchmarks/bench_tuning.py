"""§4.4 tuning — "We varied a stealunit, interval, and backunit and
took the best combination."

Sweeps a reduced grid on the wide-area cluster and asserts the knobs
matter: the spread between the best and worst combination is
substantial, and the best combination engages the send-back
circulation (the design choice DESIGN.md flags for ablation)."""

import dataclasses

import pytest

from conftest import once
from repro.apps.knapsack import SchedulingParams, scaled_instance
from repro.bench.tuning import render_sweep, run_tuning_sweep

INSTANCE = scaled_instance(n=40, target_nodes=2_000_000, seed=3)

GRID = [
    dataclasses.replace(SchedulingParams(), interval=interval,
                        stealunit=stealunit, backunit=backunit)
    for interval in (10, 100)
    for stealunit in (2, 32)
    for backunit in (2, 8)
]
# Plus the pathological no-send-back point the ablation highlights.
GRID.append(dataclasses.replace(SchedulingParams(), back_threshold=0))


def run_sweep():
    return run_tuning_sweep(INSTANCE, grid=GRID)


@pytest.fixture(scope="module")
def points():
    return run_sweep()


def test_tuning_sweep_regeneration(benchmark):
    pts = once(benchmark, run_sweep)
    print()
    print(render_sweep(pts, limit=len(pts)))


def test_parameters_matter(points):
    best, worst = points[0], points[-1]
    assert worst.execution_time > 1.3 * best.execution_time


def test_no_send_back_is_pathological(points):
    """Without circulation, the endgame serializes on one slave."""
    no_back = next(p for p in points if p.back_transfers == 0)
    assert no_back.execution_time > 1.2 * points[0].execution_time


def test_best_point_uses_circulation(points):
    assert points[0].back_transfers > 0
