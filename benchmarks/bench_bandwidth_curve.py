"""§4.2's prose as a figure: bandwidth vs. message size, all four paths.

"As message size increases however, the bandwidth when utilizing the
Nexus Proxy is close to the bandwidth of the direct communication."
This bench sweeps message sizes 1 KB → 1 MB on each Table 2 path and
prints the resulting curves, asserting the convergence structure:

* every curve is monotone non-decreasing in message size;
* on the WAN the proxied/direct ratio climbs toward 1;
* on the LAN it converges to the relay's throughput ceiling instead.
"""

import pytest

from conftest import once
from repro.bench.table2 import _measure  # reuse the Table 2 harness paths
from repro.cluster import Testbed
from repro.core import FramedConnection, NexusProxyClient
from repro.util.tables import Table
from repro.util.units import fmt_rate

SIZES = [1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20]


def sweep(pair: str, indirect: bool) -> dict[int, float]:
    """One-way bandwidth per message size on a fresh testbed."""
    tb = Testbed()
    if pair == "wan" and not indirect:
        tb.open_firewall_for_direct_runs()
    if pair == "lan":
        client_host, server_host = tb.rwcp_sun, tb.compas[0]
    else:
        client_host, server_host = tb.etl_sun, tb.rwcp_sun
    chunk = tb.relay_config.chunk_bytes
    out: dict[int, float] = {}

    def orchestrate():
        if indirect:
            server = NexusProxyClient(server_host, **tb.proxy_addrs)
            listener = yield from server.bind()

            def echo():
                framed = yield from listener.accept()
                while True:
                    payload, n = yield from framed.recv()
                    yield framed.send(payload, nbytes=n)

            tb.sim.process(echo())
            client = NexusProxyClient(client_host, **tb.proxy_addrs)
            framed = yield from client.connect(listener.proxy_addr)
        else:
            lsock = server_host.listen(9901)

            def echo():
                conn = yield lsock.accept()
                framed_srv = FramedConnection(conn, chunk)
                while True:
                    payload, n = yield from framed_srv.recv()
                    yield framed_srv.send(payload, nbytes=n)

            tb.sim.process(echo())
            plain = NexusProxyClient(client_host)
            framed = yield from plain.connect((server_host.name, 9901))
        yield framed.send(b"w", nbytes=16)  # warm-up
        yield from framed.recv()
        for size in SIZES:
            t0 = tb.sim.now
            yield framed.send(b"p", nbytes=size)
            yield from framed.recv()
            out[size] = size / ((tb.sim.now - t0) / 2)
        framed.close()

    p = tb.sim.process(orchestrate())
    tb.sim.run(until=p)
    return out


def run_curves():
    return {
        "lan-direct": sweep("lan", False),
        "lan-indirect": sweep("lan", True),
        "wan-direct": sweep("wan", False),
        "wan-indirect": sweep("wan", True),
    }


@pytest.fixture(scope="module")
def curves():
    return run_curves()


def test_bandwidth_curve_regeneration(benchmark):
    res = once(benchmark, run_curves)
    t = Table(
        ["size"] + list(res),
        title="Bandwidth vs message size (the §4.2 convergence)",
    )
    for size in SIZES:
        t.add_row(
            [f"{size >> 10} KB"] + [fmt_rate(res[path][size]) for path in res]
        )
    print()
    print(t.render())


def test_curves_monotone(curves):
    for path, curve in curves.items():
        bws = [curve[s] for s in SIZES]
        assert all(b2 >= b1 * 0.99 for b1, b2 in zip(bws, bws[1:])), path


def test_wan_ratio_converges_to_one(curves):
    ratios = [
        curves["wan-indirect"][s] / curves["wan-direct"][s] for s in SIZES
    ]
    assert ratios[0] < 0.6  # small messages: the proxy hurts
    assert ratios[-1] > 0.95  # large messages: negligible
    assert ratios == sorted(ratios)


def test_lan_ratio_converges_to_relay_ceiling(curves):
    ratios = [
        curves["lan-indirect"][s] / curves["lan-direct"][s] for s in SIZES
    ]
    # Converges, but far below 1: the relay CPU is the LAN ceiling.
    assert ratios[-1] < 0.2
    assert ratios[-1] > ratios[0]
