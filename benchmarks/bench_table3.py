"""Table 3 — the experimental testbed (four cluster systems).

A configuration table in the paper; here the bench builds every system
as an MPI world on a fresh testbed and timing-checks a barrier across
it, which verifies the whole communication stack under each system's
device (ch_p4 / vendor MPI / MPICH-G + proxy).
"""

import pytest

from conftest import once
from repro.cluster import SYSTEMS, Testbed, build_world
from repro.mpi import barrier
from repro.util.tables import Table


def build_and_barrier_all():
    out = {}
    for name, spec in SYSTEMS.items():
        tb = Testbed()
        world = build_world(tb, name)

        def rank_main(comm):
            yield from barrier(comm)
            return comm.wtime()

        def driver():
            return (yield from world.launch(rank_main))

        p = tb.sim.process(driver())
        times = tb.sim.run(until=p)
        out[name] = (spec, world.size, max(times))
    return out


def test_table3_regeneration(benchmark):
    results = once(benchmark, build_and_barrier_all)
    t = Table(
        ["Nickname", "procs", "startup+barrier (sim sec)", "Description"],
        title="Table 3. Experimental Testbed",
    )
    for name, (spec, size, tmax) in results.items():
        t.add_row([name, size, f"{tmax:.3f}", spec.description[:60]])
    print()
    print(t.render())

    assert results["COMPaS"][1] == 8
    assert results["ETL-O2K"][1] == 8
    assert results["Local-area Cluster"][1] == 12
    assert results["Wide-area Cluster"][1] == 20
    # Globus-device systems pay proxied-startup costs; the single-site
    # systems come up fast.
    assert results["COMPaS"][2] < results["Wide-area Cluster"][2]
