"""Micro-benchmarks: the substrate's raw rates.

True pytest-benchmark targets (multiple timed rounds): DES event
throughput, branch-operation rate, analytic DP speed, and the live
asyncio relay's loopback throughput.  These guard against performance
regressions in the hot paths every experiment depends on.
"""

import asyncio

from repro.apps.knapsack import random_instance, scaled_instance, tree_size
from repro.apps.knapsack.search import SearchState
from repro.simnet.kernel import Simulator


def test_des_event_throughput(benchmark):
    """Events processed per second by the kernel."""
    N = 20_000

    def run():
        sim = Simulator()

        def proc():
            for _ in range(N):
                yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        return sim.now

    result = benchmark(run)
    assert result == N


def test_branch_operation_rate(benchmark):
    """Knapsack branch ops per second (the experiments' hot loop)."""
    inst = scaled_instance(n=30, target_nodes=120_000, seed=7)

    def run():
        st = SearchState(inst)
        st.push_root()
        st.run_to_exhaustion()
        return st.nodes_traversed

    nodes = benchmark(run)
    assert nodes == tree_size(inst)


def test_tree_size_dp_rate(benchmark):
    """The vectorized analytic DP on the paper-scale 50-item instance."""
    inst = random_instance(50, seed=1)

    def run():
        return tree_size(inst)

    size = benchmark(run)
    assert size > 0


def test_channel_pingpong_rate(benchmark):
    """Simulated channel round trips per second."""
    from repro.simnet.primitives import Channel

    N = 5_000

    def run():
        sim = Simulator()
        a, b = Channel(sim), Channel(sim)

        def left():
            for i in range(N):
                yield a.put(i)
                yield b.get()

        def right():
            for _ in range(N):
                v = yield a.get()
                yield b.put(v)

        sim.process(left())
        sim.process(right())
        sim.run()
        return N

    assert benchmark(run) == N


def test_aio_relay_loopback_throughput(benchmark):
    """Live relay: MB moved through outer-server on loopback sockets."""
    from repro.core.aio import AioOuterServer, AioProxyClient

    PAYLOAD = b"z" * (1 << 20)  # 1 MiB

    async def transfer() -> int:
        outer = await AioOuterServer().start()

        async def sink(reader, writer):
            while await reader.read(1 << 16):
                pass
            writer.close()

        server = await asyncio.start_server(sink, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        client = AioProxyClient(outer_addr=("127.0.0.1", outer.control_port))
        reader, writer = await client.connect("127.0.0.1", port)
        writer.write(PAYLOAD)
        await writer.drain()
        writer.close()
        await asyncio.sleep(0)
        server.close()
        await outer.stop()
        return len(PAYLOAD)

    def run():
        return asyncio.run(transfer())

    assert benchmark(run) == len(PAYLOAD)
