"""Table 6 — number of traversed nodes (master; per-site max/min/avg).

Claims checked: "we obtained good load balance" — per-processor node
counts are proportional to processor speed (RWCP-Sun 1.0 vs COMPaS
0.55 vs ETL-O2K 0.9), balanced within each site, and conserved in
total against the analytic tree size.
"""

import pytest

from conftest import once
from repro.apps.knapsack import tree_size
from repro.bench.table56 import TABLE56_SYSTEMS, render_table6


def test_table6_regeneration(benchmark, table4_results):
    results = once(benchmark, lambda: table4_results)
    print()
    print(render_table6(results))


def test_every_rank_traverses_nodes(table4_results):
    for _, run_label in TABLE56_SYSTEMS:
        run = table4_results.runs[run_label]
        for s in run.rank_stats:
            assert s.nodes_traversed > 0, (run_label, s.rank)


def test_node_counts_balanced_within_site(table4_results):
    for _, run_label in TABLE56_SYSTEMS:
        run = table4_results.runs[run_label]
        for g in run.groups():
            assert g.nodes.maximum <= 1.5 * g.nodes.minimum, (run_label, g.group)


def test_node_share_tracks_cpu_speed(table4_results):
    """Per-slave throughput ratio COMPaS/RWCP-Sun ≈ 0.55, ETL/RWCP ≈ 0.9."""
    run = table4_results.runs["Wide-area Cluster (use Nexus Proxy)"]
    groups = {g.group: g for g in run.groups()}
    compas_ratio = groups["COMPaS"].nodes.average / groups["RWCP-Sun"].nodes.average
    etl_ratio = groups["ETL-O2K"].nodes.average / groups["RWCP-Sun"].nodes.average
    assert compas_ratio == pytest.approx(0.55, rel=0.25)
    assert etl_ratio == pytest.approx(0.90, rel=0.25)


def test_totals_conserved(table4_results):
    expected = tree_size(table4_results.config.instance())
    for _, run_label in TABLE56_SYSTEMS:
        run = table4_results.runs[run_label]
        total = run.master_stats.nodes_traversed + sum(
            s.nodes_traversed for s in run.rank_stats if not s.is_master
        )
        assert total == expected


def test_paper_scale_instance_is_billions():
    """The paper's Table 6 counts 'in billions'; the 50-item instance
    family we generate analytically reaches that scale (we *execute*
    the 20M-node scaled version — the documented substitution)."""
    from repro.apps.knapsack import paper_instance

    inst = paper_instance()
    assert inst.n == 50
    assert tree_size(inst) > 1_000_000_000
