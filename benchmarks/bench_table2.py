"""Table 2 — communication latency and bandwidth, direct vs. proxied.

Regenerates all four rows on the simulated testbed and asserts the
paper's qualitative claims:

* proxied latency is tens of milliseconds on both paths — "the
  communication latency through the Nexus Proxy is approximately six
  times larger" on the WAN, ~60x on the LAN;
* proxied bandwidth on the fast LAN drops by an order of magnitude;
* for large messages on the WAN "the overhead of the Nexus Proxy can
  be negligible".
"""

import pytest

from conftest import once
from repro.bench.table2 import PAPER_TABLE2, render_table2, run_table2


@pytest.fixture(scope="module")
def rows():
    return run_table2()


def test_table2_regeneration(benchmark, capsys=None):
    rows = once(benchmark, run_table2)
    print()
    print(render_table2(rows))
    assert len(rows) == 4


def test_lan_direct_matches_paper_cells(rows):
    lan_direct = rows[0]
    paper_lat, paper_4k, paper_1mb = PAPER_TABLE2[lan_direct.label]
    assert lan_direct.latency == pytest.approx(paper_lat, rel=0.25)
    assert lan_direct.bandwidth_4k == pytest.approx(paper_4k, rel=0.25)
    assert lan_direct.bandwidth_1mb == pytest.approx(paper_1mb, rel=0.25)


def test_wan_direct_latency_matches_paper(rows):
    wan_direct = rows[2]
    assert wan_direct.latency == pytest.approx(3.9e-3, rel=0.1)


def test_proxied_latency_is_about_25ms_on_both_paths(rows):
    lan_indirect, wan_indirect = rows[1], rows[3]
    assert lan_indirect.latency == pytest.approx(25.0e-3, rel=0.2)
    assert wan_indirect.latency == pytest.approx(25.1e-3, rel=0.25)


def test_lan_latency_blowup_is_about_60x(rows):
    ratio = rows[1].latency / rows[0].latency
    assert 30 < ratio < 120  # paper: "60 times larger"


def test_wan_latency_blowup_is_about_6x(rows):
    ratio = rows[3].latency / rows[2].latency
    assert 4 < ratio < 10  # paper: "approximately six times larger"


def test_lan_bandwidth_drop_order_of_magnitude(rows):
    direct, indirect = rows[0], rows[1]
    assert direct.bandwidth_4k / indirect.bandwidth_4k > 10
    assert direct.bandwidth_1mb / indirect.bandwidth_1mb > 10


def test_wan_large_message_overhead_negligible(rows):
    """'As message size increases however, the bandwidth when utilizing
    the Nexus Proxy is close to the bandwidth of the direct
    communication.'"""
    direct, indirect = rows[2], rows[3]
    assert indirect.bandwidth_1mb == pytest.approx(direct.bandwidth_1mb, rel=0.05)


def test_bandwidth_grows_with_message_size(rows):
    for row in rows:
        assert row.bandwidth_1mb > row.bandwidth_4k
