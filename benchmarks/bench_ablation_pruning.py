"""Ablation — pruning modes (extension beyond the paper).

The paper deliberately disabled pruning ("we used such data as no
branches were pruned") to normalize the workload.  This bench turns it
back on and compares three regimes on the wide-area cluster:

* ``no-prune``  — the paper's configuration (every node traversed);
* ``local``     — branch-and-bound with rank-local incumbents;
* ``shared``    — incumbents piggybacked on the steal protocol.

Shows why the paper's normalization was sound methodology: with
pruning, visited-node counts (and thus times) become schedule-
dependent, which would have confounded the proxy-overhead comparison.
"""

import pytest

from conftest import once
from repro.apps.knapsack import (
    SchedulingParams,
    knapsack_rank_main,
    optimal_value,
    scaled_instance,
    tree_size,
)
from repro.cluster import Testbed, build_world
from repro.util.tables import Table

# Sized so the no-prune run stays in host-seconds; capacity-limited
# trees still leave the fractional bound plenty to cut.
INSTANCE = scaled_instance(n=36, target_nodes=1_000_000, seed=21)

MODES = {
    "no-prune": SchedulingParams(node_cost=20e-6),
    "local": SchedulingParams(node_cost=20e-6, prune=True),
    "shared": SchedulingParams(node_cost=20e-6, prune=True, share_bounds=True),
}


def run_mode(params):
    tb = Testbed()
    world = build_world(tb, "Wide-area Cluster")

    def driver():
        return (yield from world.launch(knapsack_rank_main, INSTANCE, params))

    p = tb.sim.process(driver())
    results = tb.sim.run(until=p)
    return {
        "time": tb.sim.now,
        "nodes": sum(r.nodes_traversed for r in results),
        "best": results[0].global_best,
    }


def run_all():
    return {name: run_mode(params) for name, params in MODES.items()}


@pytest.fixture(scope="module")
def modes():
    return run_all()


def test_pruning_ablation_regeneration(benchmark):
    res = once(benchmark, run_all)
    full = tree_size(INSTANCE)
    t = Table(["mode", "nodes visited", "vs full tree", "time (sim sec)"],
              title="Ablation: pruning modes on the wide-area cluster")
    for name, r in res.items():
        t.add_row([name, f"{r['nodes']:,}", f"{r['nodes'] / full * 100:.1f}%",
                   f"{r['time']:.2f}"])
    print()
    print(t.render())


def test_all_modes_find_the_optimum(modes):
    opt = optimal_value(INSTANCE)
    for name, r in modes.items():
        assert r["best"] == opt, name


def test_no_prune_traverses_everything(modes):
    assert modes["no-prune"]["nodes"] == tree_size(INSTANCE)


def test_pruning_cuts_the_tree(modes):
    assert modes["local"]["nodes"] < modes["no-prune"]["nodes"]
    assert modes["shared"]["nodes"] < modes["no-prune"]["nodes"]


def test_pruned_runs_are_faster(modes):
    assert modes["shared"]["time"] < modes["no-prune"]["time"]
