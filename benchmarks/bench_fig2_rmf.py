"""Figure 2 — the RMF architecture: six-step submission flow timing.

Runs a full gatekeeper → job manager → Q client → allocator →
Q server → job flow on the simulated testbed, with the knapsack solver
as the executable, and reports per-phase timing.  Asserts the flow
crosses the firewall only through the RMF pinholes.
"""

import pytest

from conftest import once
from repro.apps.knapsack import (
    optimal_value,
    register_knapsack_executable,
    scaled_instance,
)
from repro.cluster import Testbed
from repro.rmf import RMFSystem
from repro.util.tables import Table


def run_rmf_flow():
    tb = Testbed()
    rmf = RMFSystem(tb.outer_host, tb.inner_host)
    register_knapsack_executable(rmf.registry)
    rmf.add_resource(tb.rwcp_sun, name="RWCP-Sun", cpus=4, slots=1)
    rmf.add_resource(tb.compas[0], name="COMPaS-0", cpus=4, slots=1)
    rmf.start()

    inst = scaled_instance(n=28, target_nodes=60_000, seed=2)
    rmf.gatekeeper.staging.put("data.txt", inst.serialize())

    t0 = tb.sim.now
    proc = tb.sim.process(
        rmf.submit(
            tb.etl_sun,
            "&(executable=knapsack)(count=4)(arguments=data.txt)"
            "(stage_in=data.txt)(stage_out=result.txt)(resource=RWCP-Sun)",
        )
    )
    reply = tb.sim.run(until=proc)
    elapsed = tb.sim.now - t0
    return tb, rmf, inst, reply, elapsed


@pytest.fixture(scope="module")
def flow():
    return run_rmf_flow()


def test_fig2_regeneration(benchmark):
    tb, rmf, inst, reply, elapsed = once(benchmark, run_rmf_flow)
    t = Table(["step", "value"], title="Figure 2: RMF submission flow")
    t.add_row(["gatekeeper requests handled", rmf.gatekeeper.requests_handled])
    t.add_row(["allocator requests served", rmf.allocator.requests_served])
    t.add_row(["jobs run on Q servers", sum(q.jobs_run for q in rmf.qservers)])
    t.add_row(["job turnaround (sim sec)", f"{elapsed:.2f}"])
    t.add_row(["job stdout", reply.stdout.strip()])
    print()
    print(t.render())


def test_flow_succeeds_behind_firewall(flow):
    tb, rmf, inst, reply, elapsed = flow
    assert reply.all_succeeded
    assert f"best={optimal_value(inst)}" in reply.stdout


def test_result_staged_back_out(flow):
    tb, rmf, inst, reply, elapsed = flow
    assert "result.txt" in reply.results[0].output_files
    best = int(reply.results[0].output_files["result.txt"].split()[0])
    assert best == optimal_value(inst)


def test_firewall_exposure_is_pinned_pinholes_only(flow):
    tb, rmf, inst, reply, elapsed = flow
    for rule in tb.rwcp_firewall.rules:
        assert rule.src_host is not None  # every hole pinned to a peer
