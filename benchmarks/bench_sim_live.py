"""Live evaluation-engine benchmark: seed path vs fast path, serial vs
parallel (``BENCH_sim.json``).

The PR-2 counterpart of ``bench_relay_live.py``: where that file
benchmarks the *real* relay data plane, this one benchmarks the
*simulation* engine itself — the DES kernel fast path
(``REPRO_SIM_KERNEL``), the packed-int branch kernel
(``REPRO_SEARCH_ENGINE``) and the process-pool sweep executor
(``--jobs``).  Four probes:

* **raw branch throughput** — ``SearchState.run_to_exhaustion`` on the
  Table 4 instance, no simulator involved: the branch kernel's
  nodes/sec ceiling, seed vs fast engine.
* **Table 4 suite** — the full sequential + five-system run, once with
  both toggles on ``seed`` and once on ``fast``; per-row host wall
  time, kernel events, nodes/sec and events/sec, plus the aggregate
  nodes/sec ratio (the headline number).
* **render identity** — Tables 4/5/6 rendered text must be
  *byte-identical* between the seed path, the fast path, and the fast
  path under ``jobs=2``: the fast engine buys wall time, never
  different results.
* **tuning sweep, serial vs parallel** — the same grid through
  ``jobs=1`` and ``jobs=min(4, cores)``; the speedup scales with
  physical cores (on a 1-core container the two are equivalent — the
  point of recording ``cpu_count`` next to the ratio).

Run standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_sim_live.py --quick --out -

or in full to (re)generate ``BENCH_sim.json``.
"""

from __future__ import annotations

import contextlib
import os
import sys
import time

from repro.bench.results import bench_arg_parser, bench_meta, emit_results

ENGINE_VAR = "REPRO_SEARCH_ENGINE"
KERNEL_VAR = "REPRO_SIM_KERNEL"


@contextlib.contextmanager
def engine_path(mode: str):
    """Force both toggles — branch engine and DES kernel — to ``mode``."""
    saved = {k: os.environ.get(k) for k in (ENGINE_VAR, KERNEL_VAR)}
    os.environ[ENGINE_VAR] = mode
    os.environ[KERNEL_VAR] = mode
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def raw_branch(config, repeats: int) -> dict:
    """Branch-kernel nodes/sec with no simulator in the loop."""
    from repro.apps.knapsack.search import SearchState

    instance = config.instance()
    out: dict = {}
    for mode in ("seed", "fast"):
        best = 0.0
        nodes = 0
        for _ in range(repeats):
            state = SearchState(instance, engine=mode)
            state.push_root()
            t0 = time.perf_counter()
            state.run_to_exhaustion()
            elapsed = time.perf_counter() - t0
            nodes = state.nodes_traversed
            best = max(best, nodes / elapsed)
        out[mode] = {"nodes": nodes, "nodes_per_s": round(best)}
        print(f"raw branch [{mode:4s}]  : {best / 1e6:6.2f} M nodes/s  "
              f"({nodes} nodes)")
    out["speedup"] = round(out["fast"]["nodes_per_s"] / out["seed"]["nodes_per_s"], 2)
    return out


def _renders(results) -> str:
    from repro.bench.table4 import render_table4
    from repro.bench.table56 import render_table5, render_table6

    return "\n".join(
        [render_table4(results), render_table5(results), render_table6(results)]
    )


def table4_suite(config, jobs_check: int) -> "tuple[dict, dict]":
    """Run the Table 4 suite on both paths; return (section, renders)."""
    from repro.bench.table4 import run_table4

    section: dict = {}
    renders: dict = {}
    for mode in ("seed", "fast"):
        with engine_path(mode):
            t0 = time.perf_counter()
            results = run_table4(config)
            wall = time.perf_counter() - t0
        rows = {}
        total_nodes = 0
        for label, run in results.runs.items():
            rows[label] = {
                "sim_time_s": round(run.execution_time, 6),
                "wall_s": round(run.wall_time, 3),
                "nodes": run.total_nodes,
                "events": run.events,
                "nodes_per_s": round(run.total_nodes / run.wall_time),
                "events_per_s": round(run.events / run.wall_time),
            }
            total_nodes += run.total_nodes
        seq_nodes = results.runs[
            "Wide-area Cluster (use Nexus Proxy)"
        ].total_nodes  # every run traverses the same tree
        total_nodes += seq_nodes
        section[mode] = {
            "wall_s": round(wall, 3),
            "sequential_sim_time_s": round(results.sequential_time, 6),
            "total_nodes": total_nodes,
            "nodes_per_s": round(total_nodes / wall),
            "rows": rows,
        }
        renders[mode] = _renders(results)
        print(f"table4 [{mode:4s}]       : {wall:6.2f} s wall  "
              f"({total_nodes / wall / 1e6:.2f} M nodes/s aggregate)")

    # Parallel re-run on the fast path: must render byte-identically.
    with engine_path("fast"):
        t0 = time.perf_counter()
        from repro.bench.table4 import run_table4 as _rt4

        par = _rt4(config, jobs=jobs_check)
        par_wall = time.perf_counter() - t0
    renders["fast_parallel"] = _renders(par)
    section["fast_parallel_wall_s"] = round(par_wall, 3)
    section["jobs_check"] = jobs_check

    section["speedup"] = {
        "aggregate_nodes_per_s": round(
            section["fast"]["nodes_per_s"] / section["seed"]["nodes_per_s"], 2
        ),
        "wall_ratio": round(
            section["seed"]["wall_s"] / section["fast"]["wall_s"], 2
        ),
        "per_row_wall": {
            label: round(
                section["seed"]["rows"][label]["wall_s"]
                / section["fast"]["rows"][label]["wall_s"],
                2,
            )
            for label in section["seed"]["rows"]
        },
    }
    print(f"table4 speedup      : {section['speedup']['wall_ratio']:.2f}x wall "
          f"(fast vs seed path)")
    return section, renders


def render_identity(renders: dict) -> dict:
    identical = (
        renders["seed"] == renders["fast"] == renders["fast_parallel"]
    )
    print(f"render identity     : seed == fast == parallel: {identical}")
    return {
        "seed_vs_fast": renders["seed"] == renders["fast"],
        "fast_vs_parallel": renders["fast"] == renders["fast_parallel"],
        "identical": identical,
    }


def tuning_serial_vs_parallel(points: int, seed: int, jobs: int) -> dict:
    from repro.apps.knapsack.instance import scaled_instance
    from repro.apps.knapsack.master_slave import SchedulingParams
    from repro.bench.tuning import default_grid, render_sweep, run_tuning_sweep

    instance = scaled_instance(n=40, target_nodes=2_000_000, seed=seed)
    grid = default_grid(SchedulingParams())[:points]
    t0 = time.perf_counter()
    serial = run_tuning_sweep(instance, grid=grid, jobs=1)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_tuning_sweep(instance, grid=grid, jobs=jobs)
    parallel_wall = time.perf_counter() - t0
    identical = render_sweep(serial) == render_sweep(parallel)
    print(f"tuning sweep        : serial {serial_wall:6.2f} s   "
          f"jobs={jobs} {parallel_wall:6.2f} s   "
          f"({serial_wall / parallel_wall:.2f}x, ranking identical: {identical})")
    return {
        "points": len(grid),
        "jobs": jobs,
        "serial_wall_s": round(serial_wall, 3),
        "parallel_wall_s": round(parallel_wall, 3),
        "speedup": round(serial_wall / parallel_wall, 2),
        "ranking_identical": identical,
    }


def run_suite(quick: bool, seed: int) -> dict:
    from repro.bench.table4 import Table4Config

    target = 2_000_000 if quick else 20_000_000
    config = Table4Config(target_nodes=target, seed=seed)
    jobs = min(4, os.cpu_count() or 1)
    sweep_jobs = max(2, jobs)

    results: dict = {
        "meta": bench_meta(
            quick=quick,
            target_nodes=target,
            n_items=config.n_items,
            seed=seed,
        )
    }
    results["raw_branch"] = raw_branch(config, repeats=2 if quick else 3)
    table4, renders = table4_suite(config, jobs_check=2)
    results["table4"] = table4
    results["render_identity"] = render_identity(renders)
    results["tuning_sweep"] = tuning_serial_vs_parallel(
        points=4 if quick else 9, seed=seed, jobs=sweep_jobs
    )
    return results


def main(argv=None) -> int:
    parser = bench_arg_parser(
        __doc__, "BENCH_sim.json", quick_help="2M-node trees (CI smoke run)"
    )
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args(argv)
    results = run_suite(args.quick, args.seed)

    failures = []
    if not results["render_identity"]["identical"]:
        failures.append("rendered tables differ between engine paths")
    if not results["tuning_sweep"]["ranking_identical"]:
        failures.append("tuning ranking differs between serial and parallel")
    for failure in failures:
        print(f"FAILURE: {failure}", file=sys.stderr)

    emit_results(results, args.out, "BENCH_sim.json")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
