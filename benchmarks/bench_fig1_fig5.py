"""Figures 1 & 5 — the wide-area cluster system and its environment.

Builds the Figure 5 testbed and verifies its structural invariants:
machine inventory, link speeds, and the full reachability matrix that
motivates the paper (outside cannot reach inside; the nxport is the
only inbound hole; the proxy restores connectivity).
"""

import pytest

from conftest import once
from repro.cluster import CATALOGUE, Testbed
from repro.util.tables import Table
from repro.util.units import fmt_rate


def build_testbed():
    return Testbed()


@pytest.fixture(scope="module")
def tb():
    return build_testbed()


def test_fig5_regeneration(benchmark):
    tb = once(benchmark, build_testbed)
    t = Table(
        ["site", "nickname", "system", "cpus", "rel. speed"],
        title="Figure 5: Experimental Environment",
    )
    for spec in CATALOGUE.values():
        t.add_row([spec.site, spec.nickname, spec.description, spec.cpus,
                   spec.cpu_speed])
    print()
    print(t.render())
    wan = next(l for l in tb.net.links() if l.name == "IMNet")
    print(f"\nIMNet: {fmt_rate(wan.bandwidth)} "
          f"({wan.latency * 1e3:.2f} ms one-way) -- paper: 1.5 Mbps")
    assert wan.bandwidth == pytest.approx(187_500)


def test_host_inventory(tb):
    assert len(tb.compas) == 8
    for name in ("rwcp-sun", "inner-server", "outer-server", "etl-sun", "etl-o2k"):
        assert tb.host(name)


def test_reachability_matrix(tb):
    """The firewall problem, and the proxy's answer, in one matrix."""
    can = tb.net.can_connect
    # Outside -> inside: denied (the paper's problem statement).
    assert not can("etl-sun", "rwcp-sun", 5000)
    assert not can("etl-o2k", "compas-0", 5000)
    assert not can("outer-server", "rwcp-sun", 5000)
    # Inside -> outside: allowed (outbound is allow-based).
    assert can("rwcp-sun", "etl-sun", 5000)
    assert can("compas-3", "outer-server", tb.relay_config.control_port)
    # The single inbound hole: outer -> inner on the nxport, and only
    # that pair on that port.
    assert can("outer-server", "inner-server", tb.relay_config.nxport)
    assert not can("etl-sun", "inner-server", tb.relay_config.nxport)
    assert not can("outer-server", "rwcp-sun", tb.relay_config.nxport)
    # Intra-site is unfiltered.
    assert can("rwcp-sun", "compas-0", 5000)


def test_firewall_exposure_is_one_port(tb):
    assert tb.rwcp_firewall.exposure() == 1
