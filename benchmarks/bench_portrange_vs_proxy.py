"""Ablation — Nexus Proxy vs. the Globus 1.1 port-range workaround.

The paper's §1 argues the TCP_MIN_PORT/TCP_MAX_PORT workaround "is
basically the same as the allow based firewall and loses the
advantages of a deny based firewall".  This bench quantifies the trade
both ways:

* security: inbound exposure (open ports reachable from anywhere);
* performance: the port-range mode is *direct* (no relay latency) —
  the proxy pays its ~25 ms for the exposure-1 deployment.
"""

import pytest

from conftest import once
from repro.cluster import Testbed
from repro.nexus import NexusContext
from repro.util.tables import Table

PORT_MIN, PORT_MAX = 40_000, 40_063  # one port per Nexus endpoint


def measure(mode: str):
    """One cross-firewall ping-pong; returns (latency, exposure)."""
    tb = Testbed()
    out = {}

    if mode == "proxy":
        server_ctx = NexusContext(tb.rwcp_sun, **tb.proxy_addrs)
    else:
        server_ctx = NexusContext(tb.rwcp_sun, port_min=PORT_MIN, port_max=PORT_MAX)
        server_ctx.tcp.open_firewall_range()
    client_ctx = NexusContext(tb.etl_sun)

    def server():
        ep = yield from server_ctx.create_endpoint("svc")
        out["addr"] = ep.addr
        d = yield ep.receive()
        # Echo back to the address carried in the payload.
        reply_to = d.payload
        sp = server_ctx.startpoint(reply_to)
        yield from sp.send(b"pong", nbytes=64)

    def client():
        while "addr" not in out:
            yield tb.sim.timeout(1e-3)
        ep = yield from client_ctx.create_endpoint("reply")
        sp = client_ctx.startpoint(out["addr"])
        # Warm up the connection, then measure.
        yield from sp.send(ep.addr, nbytes=64)
        t0 = tb.sim.now
        yield ep.receive()
        out["one_way"] = (tb.sim.now - t0) / 2  # rough: reply leg only

    tb.sim.process(server())
    p = tb.sim.process(client())
    tb.sim.run(until=p)
    return out["one_way"], tb.rwcp_firewall.exposure()


def run_ablation():
    return {mode: measure(mode) for mode in ("proxy", "port-range")}


@pytest.fixture(scope="module")
def results():
    return run_ablation()


def test_ablation_regeneration(benchmark):
    res = once(benchmark, run_ablation)
    t = Table(
        ["mode", "reply latency", "inbound exposure (ports)"],
        title="Ablation: Nexus Proxy vs Globus 1.1 port range",
    )
    for mode, (lat, exposure) in res.items():
        t.add_row([mode, f"{lat * 1e3:.1f} msec", exposure])
    print()
    print(t.render())


def test_proxy_minimizes_exposure(results):
    proxy_lat, proxy_exp = results["proxy"]
    range_lat, range_exp = results["port-range"]
    assert proxy_exp == 1  # the nxport, pinned
    assert range_exp == 1 + (PORT_MAX - PORT_MIN + 1)  # nxport + range


def test_port_range_is_faster_but_open(results):
    """The trade the paper takes: the proxy pays latency for the
    deny-based posture."""
    proxy_lat, _ = results["proxy"]
    range_lat, _ = results["port-range"]
    assert range_lat < proxy_lat / 2
