"""Ablation — where the proxied wide-area run spends its resources.

Runs the Table 4 wide-area configuration once and audits the testbed:
the relay daemons must be lightly loaded (the paper's 'negligible
overhead' implies headroom, not saturation), and the IMNet carries all
cross-site traffic.
"""

import pytest

from conftest import once
from repro.apps.knapsack import SchedulingParams, run_system, scaled_instance
from repro.bench.utilization import collect_utilization
from repro.cluster import Testbed


def run_and_audit():
    inst = scaled_instance(n=40, target_nodes=2_000_000, seed=3)
    tb = Testbed()
    run = run_system(tb, "Wide-area Cluster", inst,
                     SchedulingParams(node_cost=100e-6), use_proxy=True)
    return run, collect_utilization(tb)


@pytest.fixture(scope="module")
def audit():
    return run_and_audit()


def test_utilization_regeneration(benchmark):
    run, report = once(benchmark, run_and_audit)
    print()
    print(report.render())


def test_relay_daemons_not_saturated(audit):
    run, report = audit
    # Headroom: the mechanism "can be negligible" only while the relay
    # CPUs are far from full.
    assert report.host_cpu["outer-server"] < 0.5
    assert report.host_cpu["inner-server"] < 0.5
    assert report.host_cpu["outer-server"] > 0.0  # but it did work


def test_imnet_carried_cross_site_traffic(audit):
    run, report = audit
    util, nbytes = report.links["IMNet"]
    assert nbytes > 0
    assert util < 0.9  # the workload is compute-bound, not WAN-bound


def test_workers_are_the_busy_hosts(audit):
    run, report = audit
    # The knapsack charges compute via host.compute() (dedicated
    # cores), so execute()-based CPU accounting must show the *relays*
    # as the only heavy execute() users — and still lightly loaded.
    heavy = {n for n, u in report.host_cpu.items() if u > 0.5}
    assert heavy == set()
