"""Relay fleet benchmark: aggregate striped throughput vs worker count.

The fleet's perf claim is *horizontal*: one outer daemon owns one
relay host's WAN link; N workers with distinct onward source addresses
own N links.  On a single-core CI box the raw relay core moves
~160 MB/s (``parallel_streams.k8``), which would mask any fleet win —
so this harness models the thing the fleet actually scales: each
worker binds its own loopback source alias (``onward_bind_hosts``) and
the emulated WAN applies a **per-source-host byte-rate cap**
(:data:`HOST_CAP_MB_S`, default 24 MB/s ≈ a FastEthernet-era site
uplink, far below the CPU ceiling) on top of the usual 3.5 ms one-way
latency.  A single daemon tops out at one host cap; a 4-worker fleet
has 4× the link capacity and the sweep shows whether the data plane
(front-door handoff, per-worker pumps, stripe spread) delivers it.

Writes a ``fleet`` section into ``BENCH_relay.json`` (merging with the
existing sections, which ``repro-bench regress`` gates):

* ``workers.w{1,2,4}.agg_mb_per_s`` — aggregate striped MB/s with N
  workers (2 striped clients, 4 streams each, through the handoff
  front door);
* ``w4_vs_w1_speedup`` — the fleet scaling claim (acceptance ≥ 1.7×).

``--smoke-drain`` runs the CI integration scenario instead: 2 workers,
one k=4 striped transfer, drain the busier worker mid-flight, verify
the payload arrived bit-exact (zero lost/duplicated bytes) and that
the per-worker + client traces assemble with ``unresolved_parents ==
0``.  Exit 0 on success, 1 on any violated invariant.

``--overhead`` measures the cost of the observability plane itself:
the same points with worker telemetry + time-series samplers off vs
on, recorded as ``meta.obs_overhead`` (bound: <3%).

Run::

    PYTHONPATH=src python benchmarks/bench_relay_fleet.py [--quick]
    PYTHONPATH=src python benchmarks/bench_relay_fleet.py --smoke-drain
    PYTHONPATH=src python benchmarks/bench_relay_fleet.py --overhead
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.bench.results import bench_arg_parser, bench_meta, emit_results, repo_root
from repro.core.aio.fleet import FleetManager, FleetSpec
from repro.core.aio.pump import STREAM_LIMIT, maybe_drain, tune_stream
from repro.core.aio.streams import StripeSink, send_striped
from repro.core.placement import TokenBucket

MB = 1024 * 1024
WAN_DELAY_S = 3.5e-3
#: Per-relay-host WAN link capacity (MB/s).  Well below the harness
#: CPU ceiling (~40 MB/s aggregate with 4 workers + 2 client threads
#: timesharing one CI core) so the sweep measures link aggregation,
#: not CPU contention.
HOST_CAP_MB_S = 16.0
#: Onward source addresses, one per worker — all of 127/8 is loopback
#: on Linux, so these need no interface configuration.
ONWARD_HOSTS = ["127.0.0.11", "127.0.0.12", "127.0.0.13", "127.0.0.14"]
#: Stripe geometry for the sweep.  The wide per-stream window is
#: load-bearing: chains are placed cold (no byte rates yet → hash
#: ring), so the chain→worker spread can skew, and a narrow window
#: couples every stream to the global restart-marker watermark —
#: aggregate throughput collapses to the slowest host's drain rate.
#: Wide windows let relay-chain buffering (~0.5 MB/chain) bound each
#: stream's inflight instead, so fast hosts run ahead while requeue
#: exposure on a stream death stays chain-buffer-sized.
STRIPE_STREAMS = 4
STRIPE_BLOCK = 128 * 1024
STRIPE_WINDOW = 64
#: Each client's payload moves as ~this-sized sequential striped
#: sub-transfers; re-dialing between them gives placement fresh
#: byte-rate signal (see :func:`_send_side_thread`).
SUB_XFER_MB = 4


async def _wan_pipe(reader, writer, delay: float, bucket=None) -> None:
    """One direction of an emulated WAN hop: fixed one-way latency,
    optionally debiting a shared per-host token bucket first (the
    relay host's link capacity)."""
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue()

    async def flush() -> None:
        try:
            while True:
                item = await queue.get()
                if item is None:
                    break
                due, data = item
                lag = due - loop.time()
                if lag > 0:
                    await asyncio.sleep(lag)
                writer.write(data)
                await maybe_drain(writer)
        except (ConnectionError, OSError):
            pass
        with contextlib.suppress(Exception):
            writer.close()

    flusher = asyncio.ensure_future(flush())
    try:
        while True:
            data = await reader.read(1 << 16)
            if not data:
                break
            if bucket is not None:
                await bucket.acquire(len(data))
            queue.put_nowait((loop.time() + delay, data))
    except (ConnectionError, OSError):
        pass
    queue.put_nowait(None)
    await flusher


class WanEmulator:
    """WAN hop in front of one stripe sink, with per-source-host caps.

    ``buckets`` maps onward source IP → shared :class:`TokenBucket`;
    pass one dict across emulators so every stream a relay host
    originates — whichever client/sink it serves — contends for that
    host's link, exactly like a real site uplink.
    """

    def __init__(
        self,
        sink_port: int,
        buckets: "dict[str, TokenBucket]",
        cap_mb_per_s: float = HOST_CAP_MB_S,
        delay_s: float = WAN_DELAY_S,
    ) -> None:
        self.sink_port = sink_port
        self.buckets = buckets
        self.cap = cap_mb_per_s * MB
        self.delay_s = delay_s
        self._server = None
        self._tasks: set = set()

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def start(self, sock: "socket.socket | None" = None) -> "WanEmulator":
        if sock is not None:
            # Pre-bound listener (the sweep binds in the main thread so
            # senders can dial before this thread's loop is running —
            # the kernel queues the SYNs).
            self._server = await asyncio.start_server(
                self._on_conn, sock=sock, limit=STREAM_LIMIT
            )
        else:
            self._server = await asyncio.start_server(
                self._on_conn, "127.0.0.1", 0, limit=STREAM_LIMIT
            )
        return self

    async def _on_conn(self, reader, writer) -> None:
        self._tasks.add(asyncio.current_task())
        try:
            src = (writer.get_extra_info("peername") or ("?",))[0]
            bucket = self.buckets.get(src)
            if bucket is None:
                # Small burst (1/8 s of link) so a transfer can't ride
                # a banked backlog past the cap.
                bucket = TokenBucket(self.cap, self.cap / 8)
                self.buckets[src] = bucket
            onward_r, onward_w = await asyncio.open_connection(
                "127.0.0.1", self.sink_port, limit=STREAM_LIMIT
            )
            tune_stream(writer)
            tune_stream(onward_w)
            await asyncio.gather(
                # Bulk direction pays for link capacity; the return
                # path (restart markers) only pays latency.
                _wan_pipe(reader, onward_w, self.delay_s, bucket),
                _wan_pipe(onward_r, writer, self.delay_s),
            )
        except (ConnectionError, OSError):
            pass
        finally:
            self._tasks.discard(asyncio.current_task())

    async def stop(self) -> None:
        # Let delay queues flush (final restart markers) before close.
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self._server.close()
        await self._server.wait_closed()


async def _dial_chain(fleet_port: int, host: str, port: int):
    reader, writer = await asyncio.open_connection(
        "127.0.0.1", fleet_port, limit=STREAM_LIMIT
    )
    try:
        tune_stream(writer)
        writer.write(
            json.dumps({"op": "connect", "host": host, "port": port}).encode()
            + b"\n"
        )
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("fleet endpoint closed the connection")
        reply = json.loads(line)
        if not reply.get("ok"):
            raise ConnectionError(str(reply.get("error", "refused")))
        return reader, writer
    except BaseException:
        with contextlib.suppress(Exception):
            writer.close()
        raise


async def _one_client(
    fleet_port: int,
    payload: bytes,
    buckets: "dict[str, TokenBucket]",
    streams: int = 4,
    block: int = 128 * 1024,
    window: int = 8,
) -> dict:
    """One striped client: own sink + WAN hop, chains dialed through
    the fleet endpoint.  Verifies the payload hash end to end."""
    want = hashlib.sha256(payload).hexdigest()
    sink_conns: asyncio.Queue = asyncio.Queue()

    async def on_conn(reader, writer):
        await sink_conns.put((reader, writer))

    sink_srv = await asyncio.start_server(
        on_conn, "127.0.0.1", 0, limit=STREAM_LIMIT
    )
    sink_port = sink_srv.sockets[0].getsockname()[1]
    wan = await WanEmulator(sink_port, buckets).start()

    async def dial():
        return await _dial_chain(fleet_port, "127.0.0.1", wan.port)

    # The sink outlives the send: a stream the fleet aborts right as
    # the payload completes redials, and only an open StripeSink can
    # answer it with the final restart marker.
    sink = StripeSink(sink_conns.get)
    try:
        recv_task = asyncio.ensure_future(sink.recv())
        report = await send_striped(
            dial, payload, streams=streams,
            block_bytes=block, window_blocks=window,
        )
        data, _sink_report = await recv_task
        if hashlib.sha256(data).hexdigest() != want:
            raise AssertionError("stripe corruption through the fleet")
        return report
    finally:
        await sink.close()
        await wan.stop()
        sink_srv.close()


def _listen_sock(backlog: int = 64) -> "socket.socket":
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("127.0.0.1", 0))
    sock.listen(backlog)
    return sock


def _sink_side_thread(
    jobs: list, senders_done: "threading.Event", out: dict
) -> None:
    """Sink half of the sweep, on its own loop in its own OS thread:
    per-client stripe sink + WAN emulator, sharing one per-host bucket
    dict so every client contends for the same emulated links.

    Splitting sinks from senders across threads mirrors the deployed
    shape (different machines) and lets their socket syscalls overlap —
    a single loop runs out of core before a 4-worker fleet does.
    """

    async def run_job(job: dict, buckets: dict) -> bool:
        sink_conns: asyncio.Queue = asyncio.Queue()

        async def on_conn(reader, writer):
            await sink_conns.put((reader, writer))

        sink_srv = await asyncio.start_server(
            on_conn, sock=job["sink_sock"], limit=STREAM_LIMIT
        )
        sink_port = sink_srv.sockets[0].getsockname()[1]
        wan = await WanEmulator(sink_port, buckets).start(
            sock=job["wan_sock"]
        )
        sink = StripeSink(sink_conns.get)
        try:
            digest = hashlib.sha256()
            for _sub in range(job["subs"]):
                data, _report = await sink.recv()
                digest.update(data)
            ok = digest.hexdigest() == job["want"]
            # Keep the sink open past the last payload: a stream that
            # died as its sub-transfer completed redials, and only the
            # sink's completed-transfer memory can answer it.  The
            # event is set on the sender thread once all senders have
            # returned.
            await asyncio.to_thread(senders_done.wait)
            return ok
        finally:
            await sink.close()
            await wan.stop()
            sink_srv.close()
            await sink_srv.wait_closed()

    async def amain() -> None:
        buckets: "dict[str, TokenBucket]" = {}
        oks = await asyncio.gather(
            *[run_job(job, buckets) for job in jobs]
        )
        out["ok"] = all(oks)

    asyncio.run(amain())


def _send_side_thread(
    fleet_port: int,
    wan_ports: "list[int]",
    payload: bytes,
    subs: int,
    streams: int,
    block: int,
    window: int,
    senders_done: "threading.Event",
    out: dict,
) -> None:
    """Sender half of the sweep: all striped clients on one loop in a
    second OS thread, dialing chains through the fleet front door.

    Each client moves its payload as ``subs`` sequential striped
    sub-transfers (bulk jobs arriving over time, not one endless
    stream).  That sequencing is what lets the fleet's placement
    policy act: the first wave of dials is cold (hash ring — possibly
    skewed), but every later wave sees live per-worker byte rates from
    heartbeats and lands least-loaded, rebalancing the fleet within
    one sub-transfer.
    """

    async def one(wan_port: int) -> list:
        async def dial():
            return await _dial_chain(fleet_port, "127.0.0.1", wan_port)

        sub_len = (len(payload) + subs - 1) // subs
        reports = []
        for sub in range(subs):
            chunk = payload[sub * sub_len:(sub + 1) * sub_len]
            reports.append(await send_striped(
                dial, chunk, streams=streams,
                block_bytes=block, window_blocks=window,
            ))
        return reports

    async def amain() -> None:
        t0 = time.perf_counter()
        out["reports"] = await asyncio.gather(
            *[one(port) for port in wan_ports]
        )
        out["elapsed"] = time.perf_counter() - t0

    try:
        asyncio.run(amain())
    finally:
        senders_done.set()  # releases the sink thread's linger


async def fleet_point(
    workers: int, per_client_bytes: int, clients: int, repeats: int,
    streams: int = STRIPE_STREAMS, telemetry: bool = False,
    sample_interval_s: float = 0.25,
) -> float:
    """Aggregate MB/s of ``clients`` concurrent striped transfers
    through a ``workers``-worker fleet (best of ``repeats``).

    The main loop keeps the fleet manager (front door, heartbeats);
    sinks+WAN emulators and senders each get their own thread+loop so
    the harness doesn't starve the workers it is measuring.
    ``telemetry`` turns on each worker's telemetry endpoint *and*
    time-series sampler — the knob the ``--overhead`` mode flips.
    """
    payload = bytes(bytearray(range(256)) * (per_client_bytes // 256))
    want = hashlib.sha256(payload).hexdigest()
    subs = max(2, per_client_bytes // (SUB_XFER_MB * MB))
    best = 0.0
    for _ in range(repeats):
        fleet = await FleetManager(FleetSpec(
            workers=workers,
            heartbeat_s=0.1,
            onward_bind_hosts=ONWARD_HOSTS[:workers],
            telemetry=telemetry,
            sample_interval_s=sample_interval_s if telemetry else 0.0,
        )).start()
        jobs, wan_ports = [], []
        for _client in range(clients):
            job = {
                "sink_sock": _listen_sock(16),
                "wan_sock": _listen_sock(64),
                "want": want,
                "subs": subs,
            }
            wan_ports.append(job["wan_sock"].getsockname()[1])
            jobs.append(job)
        sink_out: dict = {}
        send_out: dict = {}
        senders_done = threading.Event()
        try:
            await asyncio.gather(
                asyncio.to_thread(
                    _sink_side_thread, jobs, senders_done, sink_out
                ),
                asyncio.to_thread(
                    _send_side_thread, fleet.port, wan_ports, payload,
                    subs, streams, STRIPE_BLOCK, STRIPE_WINDOW,
                    senders_done, send_out,
                ),
            )
            if not sink_out.get("ok"):
                raise AssertionError("stripe corruption through the fleet")
            best = max(
                best, clients * len(payload) / MB / send_out["elapsed"]
            )
        finally:
            await fleet.stop()
    return best


async def run_sweep(quick: bool) -> dict:
    worker_counts = (1, 2) if quick else (1, 2, 4)
    clients = 2
    repeats = 1 if quick else 2
    # Scale the payload with the fleet's link capacity so every point
    # transfers for roughly the same wall time.
    per_mb = 3 if quick else 12
    section: dict = {
        "mode": "handoff",
        "clients": clients,
        "streams_per_client": STRIPE_STREAMS,
        "stripe_window_blocks": STRIPE_WINDOW,
        "wan_delay_ms": WAN_DELAY_S * 1e3,
        "host_cap_mb_per_s": HOST_CAP_MB_S,
        "workers": {},
    }
    for workers in worker_counts:
        agg = await fleet_point(
            workers, per_mb * workers * MB, clients, repeats
        )
        section["workers"][f"w{workers}"] = {"agg_mb_per_s": round(agg, 1)}
        print(f"fleet workers={workers}  aggregate {agg:8.1f} MB/s "
              f"(host cap {HOST_CAP_MB_S:.0f} MB/s x {workers})")
    ws = section["workers"]
    if "w1" in ws and "w4" in ws:
        section["w4_vs_w1_speedup"] = round(
            ws["w4"]["agg_mb_per_s"] / ws["w1"]["agg_mb_per_s"], 2
        )
    elif "w1" in ws and "w2" in ws:
        section["w2_vs_w1_speedup"] = round(
            ws["w2"]["agg_mb_per_s"] / ws["w1"]["agg_mb_per_s"], 2
        )
    return section


async def run_overhead(quick: bool) -> dict:
    """Re-measure the observability-overhead bound with the PR-9 plane
    enabled: each point runs sampler-off then sampler-on (worker
    telemetry endpoints + 0.25 s time-series samplers) and records the
    throughput delta.  ``single_chain`` is one 1-stream transfer
    through a 1-worker fleet (the adaptive relay path, no striping to
    hide behind); ``fleet_w4`` is the full 4-worker striped point.  The
    acceptance bar stays <3% — the same bound the span recorder held
    in earlier PRs, now including the sampler.
    """
    repeats = 1 if quick else 2
    per_mb = 3 if quick else 8
    w4 = 2 if quick else 4
    section: dict = {"bound_pct": 3.0, "sample_interval_s": 0.25}
    worst = 0.0
    for label, workers, clients, streams in (
        ("single_chain", 1, 1, 1),
        (f"fleet_w{w4}", w4, 2, STRIPE_STREAMS),
    ):
        nbytes = per_mb * workers * MB
        off = await fleet_point(
            workers, nbytes, clients, repeats, streams=streams
        )
        on = await fleet_point(
            workers, nbytes, clients, repeats, streams=streams,
            telemetry=True,
        )
        pct = round((off - on) / off * 100.0, 2)
        section[label] = {
            "off_mb_per_s": round(off, 1),
            "on_mb_per_s": round(on, 1),
            "overhead_pct": pct,
        }
        worst = max(worst, pct)
        print(f"obs overhead {label}: {off:7.1f} -> {on:7.1f} MB/s "
              f"({pct:+.2f}%)")
    section["worst_pct"] = round(worst, 2)
    section["pass"] = worst < section["bound_pct"]
    return section


async def run_smoke_drain(trace_dir: str) -> int:
    """CI scenario: drain a worker under an in-flight striped
    transfer; the payload must arrive bit-exact and all traces must
    assemble flow-linked.

    Since PR 9 the smoke also exercises the fleet observability plane
    end to end: per-worker telemetry + samplers, the admin endpoint,
    a :class:`~repro.obs.aggregate.FleetAggregator` discovering the
    workers through it, and an SLO engine whose ``drain-recovery``
    rule must fire when the drain starts and resolve after the redial
    — with the alert spans landing in the assembled causal trace.  The
    aggregated time-series is written to ``timeseries.json`` in the
    trace dir (the CI artifact).  Returns a process exit code."""
    from repro.core.aio import AioProxyClient
    from repro.core.aio.fleetctl import FleetAdminServer
    from repro.obs import spans as _obs
    from repro.obs import trace as _trace
    from repro.obs.aggregate import FleetAggregator, http_get, http_get_json
    from repro.obs.assemble import assemble
    from repro.obs.export import dumps, write_artifacts
    from repro.obs.slo import SLOEngine

    payload = bytes(bytearray(range(256)) * (8 * MB // 256))
    Path(trace_dir).mkdir(parents=True, exist_ok=True)
    rec = _obs.ObsRecorder()
    _obs.install(rec)
    _trace.enable("client")
    failures: "list[str]" = []
    try:
        fleet = await FleetManager(FleetSpec(
            workers=2,
            heartbeat_s=0.1,
            drain_grace_s=0.4,
            onward_bind_hosts=ONWARD_HOSTS[:2],
            telemetry=True,
            sample_interval_s=0.2,
            trace_dir=trace_dir,
        )).start()
        admin = await FleetAdminServer(fleet).start()
        engine = SLOEngine()
        aggregator = FleetAggregator(
            "127.0.0.1", admin.bound_port, interval_s=0.1,
            on_refresh=lambda _view, now: engine.evaluate_sampler(
                aggregator.sampler, now
            ),
        )
        agg_endpoint = aggregator.make_endpoint(
            extra_routes={"/alerts": engine.alerts_route}
        )
        await agg_endpoint.start()
        aggregator.start()
        client = AioProxyClient(outer_addr=("127.0.0.1", fleet.port))
        buckets: "dict[str, TokenBucket]" = {}
        sink_conns: asyncio.Queue = asyncio.Queue()

        async def on_conn(reader, writer):
            await sink_conns.put((reader, writer))

        sink_srv = await asyncio.start_server(
            on_conn, "127.0.0.1", 0, limit=STREAM_LIMIT
        )
        sink_port = sink_srv.sockets[0].getsockname()[1]
        # Slow smoke cap (per host; both workers' hosts together move
        # ~8 MB/s) so the 8 MB transfer outlives the drain window and
        # the drained worker's chains really are aborted mid-flight.
        wan = await WanEmulator(sink_port, buckets, cap_mb_per_s=4.0).start()

        async def dial():
            return await client.connect("127.0.0.1", wan.port)

        # StripeSink (not one-shot recv_striped): the drain aborts
        # chains at the exact moment the payload may already be
        # complete at the sink, and the aborted stream's redial then
        # needs the sink's completed-transfer memory to learn the
        # final watermark instead of waiting forever.
        sink = StripeSink(sink_conns.get)
        try:
            recv_task = asyncio.ensure_future(sink.recv())
            send_task = asyncio.ensure_future(send_striped(
                dial, payload, streams=4,
                block_bytes=64 * 1024, window_blocks=8,
            ))
            await asyncio.sleep(0.35)
            if send_task.done():
                failures.append("transfer finished before the drain fired")
            # Pre-drain fleet view: both workers discovered through the
            # admin port, scraped live, and labelled on the aggregated
            # Prometheus endpoint.
            view = await aggregator.refresh()
            live = sorted(view["workers"])
            if live != ["w0", "w1"]:
                failures.append(f"aggregator discovered {live}, wanted w0+w1")
            for wid in live:
                w = view["workers"][wid]
                if w.get("stale") or not w.get("scraped"):
                    failures.append(f"worker {wid} not scraped live pre-drain")
                if w.get("schema_version") != 2:
                    failures.append(
                        f"worker {wid} telemetry schema "
                        f"{w.get('schema_version')!r}, wanted 2"
                    )
            prom = (await http_get(
                "127.0.0.1", agg_endpoint.bound_port, "/metrics"
            )).decode()
            for wid in live:
                if f'repro_worker_up{{worker="{wid}"}} 1' not in prom:
                    failures.append(
                        f"aggregated /metrics missing live label for {wid}"
                    )
            snap = fleet.snapshot()
            victim = max(
                snap["workers"],
                key=lambda w: snap["workers"][w]["active_chains"],
            )
            print(f"draining {victim} mid-transfer "
                  f"({snap['workers'][victim]['active_chains']} chains)")
            await fleet.drain(victim, grace_s=0.4)
            report = await send_task
            data, _ = await recv_task
            if data != payload:
                failures.append(
                    f"payload mismatch after drain: {len(data)} bytes"
                )
            if report["reconnects"] < 1:
                failures.append("no stream redialed — drain was a no-op")
            snap = fleet.snapshot()
            if snap["drains_completed"] != 1:
                failures.append(f"drain never completed: {snap}")
            print(f"transfer survived: {report['reconnects']} redials, "
                  f"{report['requeued_blocks']} blocks requeued, "
                  f"0 bytes lost")
            # Let the aggregator observe the completed drain so the
            # drain-recovery alert resolves, then audit the SLO plane.
            await aggregator.refresh()
            episodes = [
                a for a in engine.history if a.rule.name == "drain-recovery"
            ]
            if not episodes:
                failures.append(
                    "drain-recovery alert never fired during the drain"
                )
            elif episodes[-1].state != "resolved":
                failures.append(
                    f"drain-recovery alert stuck {episodes[-1].state}"
                )
            elif episodes[-1].breached:
                failures.append(
                    f"drain-recovery breached its bound: "
                    f"{episodes[-1].duration_s:.2f}s"
                )
            alerts = await http_get_json(
                "127.0.0.1", agg_endpoint.bound_port, "/alerts"
            )
            if not any(
                e["rule"] == "drain-recovery" and e["state"] == "resolved"
                for e in alerts.get("history", [])
            ):
                failures.append(
                    "/alerts history missing the resolved drain-recovery "
                    "episode"
                )
            post = await http_get_json(
                "127.0.0.1", agg_endpoint.bound_port, "/metrics.json"
            )
            if post.get("aggregate", {}).get("derived", {}).get(
                "bytes_relayed_total", 0
            ) <= 0:
                failures.append(
                    "aggregated endpoint shows no bytes relayed post-drain"
                )
            print(
                f"observability: {aggregator.rounds} scrape rounds, "
                f"{len(engine.history)} alert episodes, "
                f"{len(aggregator.sampler.samples)} fleet samples"
            )
        finally:
            ts_path = Path(trace_dir) / "timeseries.json"
            ts_path.write_text(dumps(aggregator.sampler.export()) + "\n")
            print(f"fleet time-series: {ts_path}")
            await aggregator.stop()
            await agg_endpoint.stop()
            await admin.stop()
            await sink.close()
            await wan.stop()
            sink_srv.close()
            await fleet.stop()
    finally:
        _obs.uninstall()
        _trace.disable()

    write_artifacts(rec, str(Path(trace_dir) / "client"))
    traces = []
    for stem in ("client", "worker-w0", "worker-w1"):
        path = Path(trace_dir) / f"{stem}.trace.json"
        if not path.exists():
            failures.append(f"missing trace artifact {path}")
            continue
        traces.append((stem, json.loads(path.read_text())))
    # The SLO engine records on the client-side recorder, so the alert
    # spans must sit in the same causal trace as the drain they track.
    client_events = next(
        (t["traceEvents"] for stem, t in traces if stem == "client"), []
    )
    slo_names = {
        e.get("name") for e in client_events
        if e.get("cat") == "slo" and e.get("ph") in ("i", "I", "X")
    }
    for wanted in ("fired:drain-recovery", "alert:drain-recovery"):
        if wanted not in slo_names:
            failures.append(f"client trace has no {wanted!r} SLO event")
    if traces:
        info = assemble(traces)["otherData"]["assembled"]
        print(f"assembled {len(traces)} traces: {info['flows']} flows, "
              f"{info['unresolved_parents']} unresolved parents")
        if info["unresolved_parents"] != 0:
            failures.append(
                f"{info['unresolved_parents']} unresolved span parents"
            )
        if info["flows"] < 1:
            failures.append("no cross-process flow links in the traces")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("fleet drain smoke: " + ("FAIL" if failures else "PASS"))
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = bench_arg_parser(
        __doc__, "BENCH_relay.json",
        quick_help="small payloads, workers 1-2 only (CI smoke run)",
    )
    parser.add_argument(
        "--smoke-drain", action="store_true",
        help="run the drain-under-load integration scenario instead of "
        "the throughput sweep (exit 1 on any lost byte or broken trace)",
    )
    parser.add_argument(
        "--trace-dir", default=None,
        help="where --smoke-drain writes per-process trace artifacts "
        "(default: a temp dir)",
    )
    parser.add_argument(
        "--overhead", action="store_true",
        help="measure observability overhead (telemetry + time-series "
        "sampler on vs off) instead of the sweep; records "
        "meta.obs_overhead in BENCH_relay.json",
    )
    args = parser.parse_args(argv)

    if args.smoke_drain:
        trace_dir = args.trace_dir or tempfile.mkdtemp(prefix="fleet-smoke-")
        print(f"trace artifacts: {trace_dir}")
        return asyncio.run(run_smoke_drain(trace_dir))

    if args.overhead:
        overhead = asyncio.run(run_overhead(args.quick))
        if not overhead["pass"]:
            print(f"WARNING: observability overhead "
                  f"{overhead['worst_pct']:.2f}% exceeds the "
                  f"{overhead['bound_pct']:.0f}% bound", file=sys.stderr)
        target = Path(args.out) if args.out and args.out != "-" else (
            repo_root() / "BENCH_relay.json"
        )
        results = {}
        if args.out != "-" and target.exists():
            with contextlib.suppress(ValueError, OSError):
                results = json.loads(target.read_text())
        if not results:
            results = {"meta": bench_meta(quick=args.quick)}
        results.setdefault("meta", {})["obs_overhead"] = overhead
        emit_results(results, args.out, "BENCH_relay.json")
        return 0

    section = asyncio.run(run_sweep(args.quick))
    speedup = section.get("w4_vs_w1_speedup")
    if speedup is not None and speedup < 1.7 and not args.quick:
        print(f"WARNING: fleet w4 speedup {speedup:.2f}x is below the "
              "1.7x acceptance bar", file=sys.stderr)

    # Merge into the existing relay results so one file carries the
    # whole data-plane story (and one regress call gates it).
    target = Path(args.out) if args.out and args.out != "-" else (
        repo_root() / "BENCH_relay.json"
    )
    results: dict = {}
    if args.out != "-" and target.exists():
        with contextlib.suppress(ValueError, OSError):
            results = json.loads(target.read_text())
    if not results:
        results = {"meta": bench_meta(quick=args.quick)}
    results["fleet"] = section
    emit_results(results, args.out, "BENCH_relay.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
