"""Table 5 — number of steals (master total; per-site max/min/avg).

Claims checked: "slaves frequently send a steal request to the master"
(hundreds+ of requests), and the request counts are balanced within a
site (max/min spread small) — the mechanism behind the paper's "good
load balance" conclusion.
"""

import pytest

from conftest import once
from repro.bench.table56 import TABLE56_SYSTEMS, render_table5


def test_table5_regeneration(benchmark, table4_results):
    results = once(benchmark, lambda: table4_results)
    print()
    print(render_table5(results))


def test_slaves_steal_frequently(table4_results):
    for _, run_label in TABLE56_SYSTEMS:
        run = table4_results.runs[run_label]
        assert run.total_steals > 100, run_label


def test_master_serves_most_requests(table4_results):
    """Requests parked without work are a small fraction."""
    for _, run_label in TABLE56_SYSTEMS:
        run = table4_results.runs[run_label]
        sent = sum(s.steal_requests for s in run.rank_stats if not s.is_master)
        served = run.total_steals
        assert served >= sent - (run.nprocs - 1)  # at most one park each


def test_steal_counts_balanced_within_site(table4_results):
    for _, run_label in TABLE56_SYSTEMS:
        run = table4_results.runs[run_label]
        for g in run.groups():
            assert g.steals.minimum > 0, (run_label, g.group)
            assert g.steals.maximum <= 3 * g.steals.minimum, (run_label, g.group)


def test_wide_area_reports_all_three_sites(table4_results):
    run = table4_results.runs["Wide-area Cluster (use Nexus Proxy)"]
    assert {g.group for g in run.groups()} == {"RWCP-Sun", "COMPaS", "ETL-O2K"}
    local = table4_results.runs["Local-area Cluster"]
    assert {g.group for g in local.groups()} == {"RWCP-Sun", "COMPaS"}
