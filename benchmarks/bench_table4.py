"""Table 4 — knapsack execution time and speedup on the four systems.

Asserts the paper's claims:

* every parallel system beats the sequential baseline, with speedups
  ordered by aggregate compute capacity;
* "the overhead of the Nexus Proxy is approximately 3.5% and this can
  be negligible" — ours must land in the low single digits;
* work conservation: the distributed search traverses exactly the
  analytic tree size.
"""

import pytest

from conftest import once
from repro.apps.knapsack import tree_size
from repro.bench.table4 import ROW_ORDER, render_table4


def test_table4_regeneration(benchmark, table4_results):
    results = once(benchmark, lambda: table4_results)
    print()
    print(render_table4(results))


def test_all_systems_beat_sequential(table4_results):
    for label in ROW_ORDER:
        assert table4_results.speedup(label) > 1.0, label


def test_speedup_ordering_follows_capacity(table4_results):
    """Aggregate speed: COMPaS 4.4 < ETL-O2K 7.2 < Local 8.4 < Wide 15.6."""
    s = table4_results.speedup
    assert s("COMPaS") < s("ETL-O2K") < s("Wide-area Cluster (use Nexus Proxy)")
    assert s("Local-area Cluster") < s("Wide-area Cluster (use Nexus Proxy)")


def test_speedups_are_reasonable(table4_results):
    """'We obtained a reasonable performance on COMPaS and Local-area
    Cluster': efficiency above 60% of each system's capacity."""
    capacity = {
        "COMPaS": 8 * 0.55,
        "ETL-O2K": 8 * 0.90,
        "Local-area Cluster": 4 * 1.0 + 8 * 0.55,
        "Wide-area Cluster (use Nexus Proxy)": 4 * 1.0 + 8 * 0.55 + 8 * 0.90,
    }
    for label, cap in capacity.items():
        eff = table4_results.speedup(label) / cap
        assert eff > 0.6, f"{label}: efficiency {eff:.2f}"


def test_proxy_overhead_is_small(table4_results):
    """Paper: approximately 3.5%.  Accept anything below 10% and above
    -5% (run-to-run scheduling noise can make the proxied run
    marginally faster)."""
    overhead = table4_results.proxy_overhead
    assert -0.05 < overhead < 0.10, f"proxy overhead {overhead * 100:.1f}%"


def test_work_conservation_on_every_system(table4_results):
    expected = tree_size(table4_results.config.instance())
    for label, run in table4_results.runs.items():
        assert run.total_nodes == expected, label


def test_parallel_answers_agree_with_sequential(table4_results):
    from repro.apps.knapsack import optimal_value

    opt = optimal_value(table4_results.config.instance())
    for label, run in table4_results.runs.items():
        assert run.best_value == opt, label
