"""Figures 3 & 4 — active vs. passive proxied connection mechanisms.

Measures connection-establishment time and first-message latency for
the two chain shapes:

* Fig. 3 (active): client → outer → destination (one relay);
* Fig. 4 (passive): peer → outer → inner → client (two relays).

Asserts the structural consequence: the passive chain pays the extra
inner-server traversal in both setup and per-message latency.
"""

import pytest

from conftest import once
from repro.cluster import Testbed
from repro.core import NexusProxyClient
from repro.util.tables import Table


def measure_chains():
    out = {}

    # -- Fig. 3: active open, pa (inside) -> etl-sun (outside) ---------
    tb = Testbed()
    lsock = tb.etl_sun.listen(9000)

    def fig3():
        client = NexusProxyClient(tb.rwcp_sun, **tb.proxy_addrs)
        t0 = tb.sim.now
        framed = yield from client.connect(("etl-sun", 9000))
        t_conn = tb.sim.now - t0
        t0 = tb.sim.now
        yield framed.send(b"x", nbytes=64)
        payload, _ = yield from echo_recv(framed)
        t_rtt = tb.sim.now - t0
        return t_conn, t_rtt / 2

    def echo_server():
        conn = yield lsock.accept()
        from repro.core import FramedConnection

        framed = FramedConnection(conn, tb.relay_config.chunk_bytes)
        payload, n = yield from framed.recv()
        yield framed.send(payload, nbytes=n)

    def echo_recv(framed):
        return (yield from framed.recv())

    tb.sim.process(echo_server())
    p = tb.sim.process(fig3())
    out["active"] = tb.sim.run(until=p)

    # -- Fig. 4: passive open, etl-sun -> pa (inside) --------------------
    tb = Testbed()

    def fig4():
        inside = NexusProxyClient(tb.rwcp_sun, **tb.proxy_addrs)
        listener = yield from inside.bind()

        results = {}

        def peer():
            t0 = tb.sim.now
            conn = yield from tb.etl_sun.connect(listener.proxy_addr)
            from repro.core import FramedConnection

            framed = FramedConnection(conn, tb.relay_config.chunk_bytes)
            results["t_conn"] = tb.sim.now - t0
            t0 = tb.sim.now
            yield framed.send(b"x", nbytes=64)
            yield from framed.recv()
            results["t_rtt"] = tb.sim.now - t0

        tb.sim.process(peer())
        framed = yield from listener.accept()
        payload, n = yield from framed.recv()
        yield framed.send(payload, nbytes=n)
        yield tb.sim.timeout(1.0)  # let the peer finish timing
        return results["t_conn"], results["t_rtt"] / 2

    p = tb.sim.process(fig4())
    out["passive"] = tb.sim.run(until=p)
    return out


@pytest.fixture(scope="module")
def chains():
    return measure_chains()


def test_fig3_fig4_regeneration(benchmark):
    out = once(benchmark, measure_chains)
    t = Table(
        ["chain", "relays", "connect time", "one-way msg latency"],
        title="Figures 3/4: relay chain costs",
    )
    t.add_row(["active (Fig. 3)", 1, f"{out['active'][0] * 1e3:.1f} msec",
               f"{out['active'][1] * 1e3:.1f} msec"])
    t.add_row(["passive (Fig. 4)", 2, f"{out['passive'][0] * 1e3:.1f} msec",
               f"{out['passive'][1] * 1e3:.1f} msec"])
    print()
    print(t.render())


def test_passive_chain_pays_extra_relay(chains):
    active_lat = chains["active"][1]
    passive_lat = chains["passive"][1]
    # One extra relay traversal ≈ per-chunk (cpu + delay) more.
    assert passive_lat > active_lat + 5e-3


def test_active_chain_single_relay_latency(chains):
    # One relay traversal + WAN ≈ 12 + 3.5 ms.
    assert 8e-3 < chains["active"][1] < 25e-3


def test_connect_times_are_milliseconds_not_seconds(chains):
    for name in ("active", "passive"):
        assert chains[name][0] < 0.2
