"""Ablation — relay chunk size (the design choice behind Table 2).

Sweeps the relay read-buffer size and shows the trade DESIGN.md calls
out: bigger chunks amortize per-chunk CPU (higher proxied throughput)
but today's Table 2 latency/bandwidth pair pins the deployed value.
Also cross-checks simulation against the analytic chain model.
"""

import pytest

from conftest import once
from repro.bench.calibrate import table2_chain_models
from repro.cluster import Testbed, TestbedParams
from repro.core import FramedConnection, NexusProxyClient, RelayConfig
from repro.util.tables import Table
from repro.util.units import MIB_MESSAGE, fmt_rate

CHUNKS = [512, 1024, 4096, 16384]


def proxied_1mb_bandwidth(chunk_bytes: int) -> float:
    relay = RelayConfig().with_overrides(chunk_bytes=chunk_bytes)
    tb = Testbed(relay_config=relay)
    out = {}

    def orchestrate():
        inside = NexusProxyClient(tb.rwcp_sun, **tb.proxy_addrs,
                                  config=relay)
        listener = yield from inside.bind()

        def peer():
            # LAN peer: compas-0 dials the public port.
            conn = yield from tb.compas[0].connect(listener.proxy_addr)
            framed = FramedConnection(conn, relay.chunk_bytes)
            yield framed.send(b"", nbytes=MIB_MESSAGE)

        tb.sim.process(peer())
        framed = yield from listener.accept()
        t0 = tb.sim.now
        payload, n = yield from framed.recv()
        out["bw"] = n / (tb.sim.now - t0)

    p = tb.sim.process(orchestrate())
    tb.sim.run(until=p)
    return out["bw"]


def run_sweep():
    return {c: proxied_1mb_bandwidth(c) for c in CHUNKS}


@pytest.fixture(scope="module")
def sweep():
    return run_sweep()


def test_relay_chunk_ablation_regeneration(benchmark):
    res = once(benchmark, run_sweep)
    t = Table(
        ["chunk bytes", "proxied 1MB bandwidth (LAN)", "analytic asymptote"],
        title="Ablation: relay chunk size vs proxied throughput",
    )
    for chunk, bw in res.items():
        model = table2_chain_models(
            relay=RelayConfig().with_overrides(chunk_bytes=chunk)
        )["RWCP-Sun <-> COMPaS (indirect)"]
        t.add_row([chunk, fmt_rate(bw), fmt_rate(model.asymptotic_bandwidth())])
    print()
    print(t.render())


def test_throughput_monotone_in_chunk_size(sweep):
    bws = [sweep[c] for c in CHUNKS]
    assert bws == sorted(bws)


def test_simulation_matches_analytic_model(sweep):
    for chunk, bw in sweep.items():
        model = table2_chain_models(
            relay=RelayConfig().with_overrides(chunk_bytes=chunk)
        )["RWCP-Sun <-> COMPaS (indirect)"]
        predicted = model.bandwidth(MIB_MESSAGE)
        assert bw == pytest.approx(predicted, rel=0.25), chunk
