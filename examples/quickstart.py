#!/usr/bin/env python3
"""Quickstart: the whole system in one script.

Builds the paper's Figure 5 testbed (two firewalled-and-open sites,
the 1.5 Mbps IMNet, the Nexus Proxy outer/inner servers), shows the
firewall problem and the proxy's answer, then runs a small parallel
0-1 knapsack on the 20-processor wide-area cluster and prints a
miniature Table 4.

Run:  python examples/quickstart.py
"""

from repro.apps.knapsack import (
    SchedulingParams,
    optimal_value,
    run_sequential_baseline,
    run_system,
    scaled_instance,
    tree_size,
)
from repro.cluster import CATALOGUE, Testbed
from repro.util.tables import Table


def show_environment(tb: Testbed) -> None:
    print("=== Figure 5: the experimental environment ===")
    t = Table(["site", "machine", "description", "cpus", "rel. speed"])
    for spec in CATALOGUE.values():
        t.add_row([spec.site, spec.nickname, spec.description,
                   spec.cpus, spec.cpu_speed])
    print(t.render())
    print()


def show_firewall_problem(tb: Testbed) -> None:
    print("=== The firewall problem (and the Nexus Proxy's answer) ===")
    checks = [
        ("etl-sun -> rwcp-sun:5000   (inbound)", "etl-sun", "rwcp-sun", 5000),
        ("rwcp-sun -> etl-sun:5000   (outbound)", "rwcp-sun", "etl-sun", 5000),
        ("outer -> inner:nxport      (the pinhole)",
         "outer-server", "inner-server", tb.relay_config.nxport),
        ("etl-sun -> inner:nxport    (pinned!)",
         "etl-sun", "inner-server", tb.relay_config.nxport),
    ]
    for label, src, dst, port in checks:
        verdict = "ALLOWED" if tb.net.can_connect(src, dst, port) else "DENIED"
        print(f"  {label:45s} {verdict}")
    print(f"  total inbound exposure: {tb.rwcp_firewall.exposure()} port(s)")
    print()


def run_knapsack() -> None:
    print("=== A miniature Table 4 (0-1 knapsack, work stealing) ===")
    instance = scaled_instance(n=36, target_nodes=1_000_000, seed=5)
    params = SchedulingParams()
    print(
        f"instance: {instance.n} items, capacity {instance.capacity}, "
        f"full search tree = {tree_size(instance):,} nodes, "
        f"optimum = {optimal_value(instance)}"
    )
    sequential = run_sequential_baseline(Testbed(), instance, params)
    t = Table(["System", "procs", "time (sim sec)", "speedup"])
    t.add_row(["RWCP-Sun (sequential)", 1, f"{sequential:.1f}", "1.00"])
    for system in ("COMPaS", "Local-area Cluster", "Wide-area Cluster"):
        run = run_system(Testbed(), system, instance, params)
        assert run.best_value == optimal_value(instance)
        t.add_row([system, run.nprocs, f"{run.execution_time:.1f}",
                   f"{sequential / run.execution_time:.2f}"])
    print(t.render())
    print("\n(Real experiment: pytest benchmarks/ --benchmark-only, "
          "or repro-bench all)")


def main() -> None:
    tb = Testbed()
    show_environment(tb)
    show_firewall_problem(tb)
    run_knapsack()


if __name__ == "__main__":
    main()
