#!/usr/bin/env python3
"""Regenerate Table 2 (latency/bandwidth, direct vs. proxied) and
compare the simulation against the analytic chain model.

Run:  python examples/table2_experiment.py
"""

from repro.bench.calibrate import table2_chain_models
from repro.bench.table2 import render_table2, run_table2
from repro.util.tables import Table
from repro.util.units import MIB_MESSAGE, SMALL_MESSAGE, fmt_rate, fmt_time


def main() -> None:
    print("Measuring (four fresh testbeds, ping-pong at 16B/4KB/1MB)...\n")
    rows = run_table2()
    print(render_table2(rows))

    print("\nAnalytic cross-check (closed-form pipeline model):\n")
    models = table2_chain_models()
    t = Table(["row", "sim latency", "model", "sim bw 1MB", "model"])
    for row in rows:
        model = models[row.label]
        t.add_row(
            [
                row.label,
                fmt_time(row.latency),
                fmt_time(model.ping_pong_latency()),
                fmt_rate(row.bandwidth_1mb),
                fmt_rate(model.bandwidth(MIB_MESSAGE)),
            ]
        )
    print(t.render())

    lan_direct, lan_indirect, wan_direct, wan_indirect = rows
    print("\nThe paper's claims, checked:")
    print(f"  LAN latency blow-up through the proxy: "
          f"{lan_indirect.latency / lan_direct.latency:.0f}x   (paper: ~60x)")
    print(f"  WAN latency blow-up through the proxy: "
          f"{wan_indirect.latency / wan_direct.latency:.1f}x   (paper: ~6x)")
    print(f"  LAN bandwidth drop at 1MB: "
          f"{lan_direct.bandwidth_1mb / lan_indirect.bandwidth_1mb:.0f}x   "
          f"(paper: 'order of magnitude')")
    print(f"  WAN 1MB proxied vs direct: "
          f"{wan_indirect.bandwidth_1mb / wan_direct.bandwidth_1mb * 100:.1f}%   "
          f"(paper: 'overhead ... can be negligible')")


if __name__ == "__main__":
    main()
