#!/usr/bin/env python3
"""RMF end-to-end (Figure 2): submitting jobs to firewalled clusters.

Wires the full Resource Manager beyond the Firewall on the simulated
testbed — gatekeeper outside, allocator and Q servers inside, pinholes
pinned — and walks through the paper's six-step submission flow with
three jobs: a shell-style echo, a multi-resource fan-out, and the
parallel knapsack solver with GASS-style file staging.

Run:  python examples/rmf_job_submission.py
"""

from repro.apps.knapsack import (
    optimal_value,
    register_knapsack_executable,
    scaled_instance,
)
from repro.cluster import Testbed
from repro.rmf import RMFSystem


def main() -> None:
    tb = Testbed()

    # Step 0: gatekeeper outside the firewall (we reuse the outer
    # server's host), allocator inside, a Q server on every resource.
    rmf = RMFSystem(
        gatekeeper_host=tb.outer_host,
        allocator_host=tb.inner_host,
        gridmap={"/O=Grid/OU=ETL/CN=researcher": "researcher"},
    )
    register_knapsack_executable(rmf.registry)
    rmf.add_resource(tb.rwcp_sun, name="RWCP-Sun", cpus=4)
    for i, node in enumerate(tb.compas):
        rmf.add_resource(node, name=f"COMPaS-{i}", cpus=4)
    rmf.start()
    print(f"RMF up: gatekeeper at {rmf.gatekeeper.addr}, "
          f"allocator at {rmf.allocator.addr}, "
          f"{len(rmf.qservers)} Q servers")
    print(f"firewall pinholes opened: {len(tb.rwcp_firewall.rules)} "
          f"(all pinned to specific peers)\n")

    user = tb.etl_sun  # the submitting user sits at ETL
    subject = "/O=Grid/OU=ETL/CN=researcher"

    def submit(rsl: str):
        proc = tb.sim.process(rmf.submit(user, rsl, subject))
        return tb.sim.run(until=proc)

    # -- job 1: hello, grid ----------------------------------------------
    print("--- job 1: echo on whichever resource the allocator picks ---")
    reply = submit("&(executable=echo)(arguments=hello from beyond the firewall)")
    print(f"ok={reply.all_succeeded} resource={reply.results[0].resource} "
          f"stdout={reply.stdout.strip()!r}\n")

    # -- job 2: a 20-way fan-out across resources ----------------------------
    print("--- job 2: 20 processes (must span several resources) ---")
    reply = submit("&(executable=spin)(arguments=0.5)(count=20)")
    placements = [(r.resource, r.run_time) for r in reply.results]
    print(f"ok={reply.all_succeeded} sub-jobs={len(reply.results)} "
          f"on {sorted({p for p, _ in placements})}\n")

    # -- job 3: the knapsack solver with file staging --------------------------
    print("--- job 3: parallel knapsack with staged input/output ---")
    instance = scaled_instance(n=30, target_nodes=150_000, seed=7)
    rmf.gatekeeper.staging.put("data.txt", instance.serialize())
    reply = submit(
        "&(executable=knapsack)(count=4)(arguments=data.txt)"
        "(stage_in=data.txt)(stage_out=result.txt)(resource=RWCP-Sun)"
    )
    print(f"ok={reply.all_succeeded} stdout={reply.stdout.strip()!r}")
    staged = reply.results[0].output_files["result.txt"].decode().split()
    print(f"staged-out result: best={staged[0]} (DP optimum: "
          f"{optimal_value(instance)}), nodes={staged[1]}")

    # -- the point ---------------------------------------------------------------
    print("\n--- and the firewall never opened for the user ---")
    print(f"user can dial rwcp-sun directly: "
          f"{tb.net.can_connect('etl-sun', 'rwcp-sun', 7200)}")
    print(f"auth failures recorded for bad subjects: "
          f"{rmf.gatekeeper.auth_failures}")
    bad = tb.sim.process(rmf.submit(user, "&(executable=echo)", "/CN=mallory"))
    reply = tb.sim.run(until=bad)
    print(f"mallory's submission: ok={reply.ok} error={reply.error!r}")


if __name__ == "__main__":
    main()
