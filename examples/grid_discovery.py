#!/usr/bin/env python3
"""Discovery-to-execution: GIS → gatekeeper → firewalled cluster.

The Globus mechanisms the paper's testbed stood on were communication
(Nexus), authentication (gridmap), *network information* (MDS) and
data access (GASS).  This example exercises the information leg: a
grid client that knows nothing about the testbed queries the
directory, picks a resource, and submits a job to the gatekeeper the
record points at — while the resource itself stays behind the
deny-based firewall.

Run:  python examples/grid_discovery.py
"""

from repro.cluster import Testbed
from repro.gis import GISClient, GISServer, publish_rmf_resources
from repro.rmf import RMFSystem, submit_job
from repro.util.tables import Table


def main() -> None:
    tb = Testbed()

    # -- deployment side: RMF + directory, resources published ----------
    rmf = RMFSystem(tb.outer_host, tb.inner_host)
    rmf.add_resource(tb.rwcp_sun, name="RWCP-Sun", cpus=4)
    for i, node in enumerate(tb.compas[:4]):
        rmf.add_resource(node, name=f"COMPaS-{i}", cpus=4)
    rmf.start()
    gis = GISServer(tb.outer_host).start()
    dns = publish_rmf_resources(gis, rmf, site="rwcp")
    print(f"directory populated: {len(dns)} records at {gis.addr}\n")

    # -- client side: discover, choose, submit ------------------------------
    client = GISClient(tb.etl_sun, gis.addr)
    out = {}

    def discover_and_run():
        print("query: (&(type=compute)(cpus>=4)(behind_firewall=true))")
        hits = yield from client.search(
            "(&(type=compute)(cpus>=4)(behind_firewall=true))"
        )
        t = Table(["resource", "site", "cpus", "speed", "submit via"])
        for r in hits:
            t.add_row([r.get("resource"), r.get("site"), r.get("cpus"),
                       r.get("cpu_speed"),
                       f"{r.get('gatekeeper_host')}:{r.get('gatekeeper_port')}"])
        print(t.render())

        # Pick the fastest discovered resource and submit there.
        best = max(hits, key=lambda r: float(r.get("cpu_speed")))
        gk_addr = (best.get("gatekeeper_host"), best.get("gatekeeper_port"))
        print(f"\nsubmitting to {best.get('resource')!r} via {gk_addr} ...")
        reply = yield from submit_job(
            tb.etl_sun, gk_addr,
            f"&(executable=echo)(arguments=ran on discovered resource)"
            f"(resource={best.get('resource')})",
        )
        out["reply"] = reply
        client.close()

    proc = tb.sim.process(discover_and_run())
    tb.sim.run(until=proc)
    reply = out["reply"]
    print(f"ok={reply.all_succeeded} resource={reply.results[0].resource} "
          f"stdout={reply.stdout.strip()!r}")
    print(f"\n(direct access to that resource is still denied: "
          f"{tb.net.can_connect('etl-sun', reply.results[0].resource, 7200)})")


if __name__ == "__main__":
    main()
