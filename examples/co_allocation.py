#!/usr/bin/env python3
"""DUROC-style co-allocation: one command, one MPI world, two sites.

How the paper's wide-area runs were actually started: ``globusrun``
hands a multi-request to DUROC, which submits one GRAM sub-job per
site and synchronizes startup; MPICH-G exchanges endpoint addresses so
the ranks can talk.  Here the RWCP sub-job lands behind the deny-based
firewall (its ranks publish their endpoints through the Nexus Proxy)
and the ETL sub-job runs in the open — and the four ranks form one
communicator.

Run:  python examples/co_allocation.py
"""

from repro.cluster import Testbed
from repro.mpi.collectives import allreduce, gather
from repro.nexus import NexusContext
from repro.rmf import RMFSystem, SubJob, co_allocate, make_mpi_executable
from repro.rmf.allocator import ResourceAllocator
from repro.rmf.duroc import RendezvousServer
from repro.rmf.gatekeeper import Gatekeeper
from repro.rmf.qsystem import QServer


def rank_main(comm):
    """The co-allocated application: who's here, and a global sum."""
    names = yield from gather(comm, comm.host.name, root=0)
    total = yield from allreduce(comm, comm.rank + 1, lambda a, b: a + b)
    return f"sum={total}" + (f" world={names}" if comm.rank == 0 else "")


def main() -> None:
    tb = Testbed()

    # -- site A: RWCP, behind the firewall, fronted by RMF ---------------
    rmf_rwcp = RMFSystem(tb.outer_host, tb.inner_host)
    rmf_rwcp.add_resource(tb.rwcp_sun, name="RWCP-Sun", cpus=4)
    rmf_rwcp.start()

    # -- site B: ETL, open, its own gatekeeper + Q server ------------------
    alloc_etl = ResourceAllocator(tb.etl_sun, port=7301).start()
    gk_etl = Gatekeeper(tb.etl_sun, alloc_etl.addr, port=2120).start()
    qs_etl = QServer(tb.etl_o2k, resource_name="ETL-O2K", cpus=8).start()
    alloc_etl.add_resource("ETL-O2K", tb.etl_o2k.name, qs_etl.port, cpus=8)

    # -- the co-allocation service -------------------------------------------
    rendezvous = RendezvousServer(tb.outer_host).start()
    proxied = tb.proxy_addrs
    rmf_rwcp.registry.register(
        "mpi-app",
        make_mpi_executable(
            rank_main, rendezvous.addr,
            context_factory=lambda h: NexusContext(h, **proxied),
        ),
    )
    qs_etl.registry.register("mpi-app", make_mpi_executable(rank_main, rendezvous.addr))

    print("submitting one multi-request: 2 ranks at RWCP (firewalled) + "
          "2 ranks at ETL ...\n")

    def client():
        replies = yield from co_allocate(
            tb.etl_sun,
            [
                SubJob(rmf_rwcp.gatekeeper.addr,
                       "&(executable=mpi-app)(count=2)(arguments=demo 4 0)"
                       "(resource=RWCP-Sun)"),
                SubJob(gk_etl.addr,
                       "&(executable=mpi-app)(count=2)(arguments=demo 4 2)"
                       "(resource=ETL-O2K)"),
            ],
        )
        return replies

    proc = tb.sim.process(client())
    replies = tb.sim.run(until=proc)

    for reply, site in zip(replies, ("RWCP", "ETL")):
        print(f"--- sub-job at {site} (ok={reply.all_succeeded}) ---")
        print(reply.stdout.strip())
    print(f"\nrendezvous barriers completed: {rendezvous.jobs_completed}")
    print(f"relay frames carried for the firewalled ranks: "
          f"outer={tb.outer_server.stats.frames_relayed}, "
          f"inner={tb.inner_server.stats.frames_relayed}")
    print(f"firewall still deny-based: "
          f"{not tb.net.can_connect('etl-o2k', 'rwcp-sun', 7200)}")


if __name__ == "__main__":
    main()
