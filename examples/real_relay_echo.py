#!/usr/bin/env python3
"""The live Nexus Proxy on real sockets (Figures 3 and 4).

Starts the outer and inner relay daemons in-process on loopback,
emulates the deny-based firewall with an address-policy dialer, and
demonstrates both connection mechanisms:

* **active open** (Fig. 3): a client "inside" reaches an echo server
  "outside" through the outer server;
* **passive open** (Fig. 4): a process "inside" publishes a listening
  endpoint on the outer server with ``NXProxyBind``; an outside peer
  connects to the public address and is chained back in through the
  inner server.

Run:  python examples/real_relay_echo.py

(The same daemons are installable as ``repro-outer-server`` /
``repro-inner-server`` for an actual two-machine deployment.)
"""

import asyncio

from repro.core.aio import (
    AioInnerServer,
    AioOuterServer,
    AioProxyClient,
    GuardedDialer,
)
from repro.simnet.firewall import Firewall, FirewallBlocked


async def start_outside_echo() -> tuple[asyncio.AbstractServer, int]:
    async def echo(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        while data := await reader.read(4096):
            writer.write(data)
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(echo, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


async def main() -> None:
    # -- deployment -----------------------------------------------------
    outer = await AioOuterServer().start()
    inner = await AioInnerServer().start()
    print(f"outer server: 127.0.0.1:{outer.control_port} (control)")
    print(f"inner server: 127.0.0.1:{inner.nxport} (nxport)")

    echo_server, echo_port = await start_outside_echo()
    print(f"echo server (outside): 127.0.0.1:{echo_port}")

    # -- the emulated deny-based firewall --------------------------------
    firewall = Firewall.typical(name="rwcp", reject=True)
    dialer = GuardedDialer(
        site_of={"pa": "rwcp", "inner": "rwcp"},  # everything else: outside
        firewalls={"rwcp": firewall},
        resolve={"echo": ("127.0.0.1", echo_port)},
    )
    print("\n--- the problem: outside cannot dial in ---")
    try:
        await dialer.open_connection("echo", "pa", host="127.0.0.1", port=1)
    except FirewallBlocked as exc:
        print(f"blocked as expected: {exc}")

    client = AioProxyClient(
        outer_addr=("127.0.0.1", outer.control_port),
        inner_addr=("127.0.0.1", inner.nxport),
    )

    # -- Fig. 3: active open -------------------------------------------------
    print("\n--- Fig. 3: NXProxyConnect (active open, one relay) ---")
    reader, writer = await client.connect("127.0.0.1", echo_port)
    writer.write(b"hello through the outer server")
    await writer.drain()
    print("echoed:", await reader.readexactly(30))
    writer.close()

    # -- Fig. 4: passive open ---------------------------------------------------
    print("\n--- Fig. 4: NXProxyBind/Accept (passive open, two relays) ---")
    listener = await client.bind()
    host, port = listener.proxy_addr
    print(f"published on the outer server: {host}:{port} "
          f"(private socket: {listener.local_addr})")

    async def outside_peer() -> bytes:
        r, w = await asyncio.open_connection(host, port)
        w.write(b"knock knock from outside")
        await w.drain()
        reply = await r.readexactly(7)
        w.close()
        return reply

    peer_task = asyncio.create_task(outside_peer())
    chained_reader, chained_writer = await listener.accept(timeout=10)
    data = await chained_reader.readexactly(24)
    print(f"inside received: {data!r}")
    chained_writer.write(b"come in")
    await chained_writer.drain()
    print(f"outside received: {await peer_task!r}")

    # -- teardown --------------------------------------------------------------
    await listener.close()
    echo_server.close()
    await outer.stop()
    await inner.stop()
    print(
        f"\nrelay stats: outer moved {outer.stats.bytes_relayed} bytes in "
        f"{outer.stats.chunks_relayed} chunks "
        f"({outer.stats.active_connects} active connects, "
        f"{outer.stats.passive_chains} passive chains); "
        f"inner moved {inner.stats.bytes_relayed} bytes"
    )


if __name__ == "__main__":
    asyncio.run(main())
