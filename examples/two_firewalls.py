#!/usr/bin/env python3
"""Beyond the paper: every site behind its own firewall.

The paper's testbed had one firewalled site; its conclusion calls for
spreading metacomputing "over various sites", which means the general
case — all sites deny-based, each with its own Nexus Proxy pair.  This
example builds two such sites, shows they cannot reach each other
directly, then runs an MPI job across both: connections chain through
*three* relays (dialer's outer → target's public port → target's
inner) with total inbound exposure of one pinned port per site.

Run:  python examples/two_firewalls.py
"""

from repro.cluster.multisite import DualFirewallTestbed
from repro.core import NexusProxyClient
from repro.mpi import MPIWorld, allreduce, gather
from repro.util.tables import Table


def main() -> None:
    tb = DualFirewallTestbed(hosts_per_site=2)
    alpha, beta = tb.site("alpha"), tb.site("beta")

    print("=== two sites, two deny-based firewalls, two proxy pairs ===")
    t = Table(["check", "verdict"])
    t.add_row(["alpha-host-0 -> beta-host-0 (direct)",
               "ALLOWED" if tb.net.can_connect("alpha-host-0", "beta-host-0", 5000)
               else "DENIED"])
    t.add_row(["beta-host-0 -> alpha-host-0 (direct)",
               "ALLOWED" if tb.net.can_connect("beta-host-0", "alpha-host-0", 5000)
               else "DENIED"])
    t.add_row(["beta-host-0 -> alpha-outer (control port)",
               "ALLOWED" if tb.net.can_connect(
                   "beta-host-0", "alpha-outer", tb.relay_config.control_port)
               else "DENIED"])
    t.add_row(["total inbound exposure", f"{tb.total_exposure()} ports "
               "(one pinned nxport per site)"])
    print(t.render())

    print("\n=== a message across both firewalls (3 relay traversals) ===")
    out = {}

    def publisher():
        client = NexusProxyClient(alpha.hosts[0], **alpha.proxy_addrs)
        listener = yield from client.bind()
        out["public"] = listener.proxy_addr
        framed = yield from listener.accept()
        payload, n = yield from framed.recv()
        print(f"alpha received: {payload!r} ({n} bytes)")
        yield framed.send("greetings from alpha", nbytes=128)

    def dialer():
        while "public" not in out:
            yield tb.sim.timeout(1e-3)
        client = NexusProxyClient(beta.hosts[0], **beta.proxy_addrs)
        t0 = tb.sim.now
        framed = yield from client.connect(out["public"])
        yield framed.send("hello from beta", nbytes=128)
        payload, _ = yield from framed.recv()
        print(f"beta received:  {payload!r} "
              f"(round trip {1e3 * (tb.sim.now - t0):.1f} ms sim)")

    tb.sim.process(publisher())
    proc = tb.sim.process(dialer())
    tb.sim.run(until=proc)
    print(f"relays used: beta-outer {beta.outer_server.stats.active_connects} "
          f"active connect(s); alpha-outer "
          f"{alpha.outer_server.stats.passive_chains} passive chain(s); "
          f"alpha-inner {alpha.inner_server.stats.frames_relayed} frames")

    print("\n=== a 4-rank MPI job spanning both sites ===")
    world = MPIWorld(tb.net, relay_config=tb.relay_config)
    for h in alpha.hosts:
        world.add_rank(h, **alpha.proxy_addrs)
    for h in beta.hosts:
        world.add_rank(h, **beta.proxy_addrs)

    def rank_main(comm):
        names = yield from gather(comm, comm.host.name, root=0)
        total = yield from allreduce(comm, comm.rank, lambda a, b: a + b)
        return (names, total)

    def driver():
        return (yield from world.launch(rank_main))

    p = tb.sim.process(driver())
    results = tb.sim.run(until=p)
    names, total = results[0]
    print(f"rank 0 gathered hostnames: {names}")
    print(f"allreduce(sum of ranks) on every rank: "
          f"{[r[1] for r in results]}")


if __name__ == "__main__":
    main()
