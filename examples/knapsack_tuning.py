#!/usr/bin/env python3
"""The §4.4 tuning methodology: sweep (interval, stealunit, backunit)
on the wide-area cluster and take the best combination.

Also demonstrates the two failure modes the scheduler avoids (they
appear at the bottom of the sweep): no send-back circulation (endgame
serializes on one slave) and an over-chatty configuration.

Run:  python examples/knapsack_tuning.py        (~1 minute)
"""

import dataclasses

from repro.apps.knapsack import SchedulingParams, scaled_instance, tree_size
from repro.bench.tuning import render_sweep, run_tuning_sweep


def main() -> None:
    instance = scaled_instance(n=40, target_nodes=2_000_000, seed=3)
    print(f"instance: {instance.n} items, "
          f"{tree_size(instance):,}-node search tree")
    base = SchedulingParams()
    grid = [
        dataclasses.replace(base, interval=interval, stealunit=stealunit,
                            backunit=backunit)
        for interval in (10, 25, 100)
        for stealunit in (2, 8, 32)
        for backunit in (2, 8)
    ]
    # The ablation point: disable send-back entirely.
    grid.append(dataclasses.replace(base, back_threshold=0))

    print(f"sweeping {len(grid)} combinations on the Wide-area Cluster...\n")
    points = run_tuning_sweep(instance, grid=grid)
    print(render_sweep(points, limit=len(points)))

    best, worst = points[0], points[-1]
    print(f"\nbest combination:  {best.describe()}  "
          f"-> {best.execution_time:.1f}s")
    print(f"worst combination: {worst.describe()}  "
          f"-> {worst.execution_time:.1f}s "
          f"({worst.execution_time / best.execution_time:.1f}x slower)")
    no_back = next((p for p in points if p.back_transfers == 0), None)
    if no_back is not None:
        print(f"without send-back: {no_back.execution_time:.1f}s — "
              "the endgame serializes on whichever slave holds the last "
              "big subtree")


if __name__ == "__main__":
    main()
